#include "src/simulator/health_prober.h"

#include <limits>

#include "src/common/logging.h"

namespace sarathi {

std::string_view ReplicaHealthName(ReplicaHealth health) {
  switch (health) {
    case ReplicaHealth::kHealthy:
      return "healthy";
    case ReplicaHealth::kDegraded:
      return "degraded";
    case ReplicaHealth::kDown:
      return "down";
    case ReplicaHealth::kUnreachable:
      return "unreachable";
  }
  return "unknown";
}

HealthProber::HealthProber(int num_replicas, const ProberOptions& options)
    : options_(options), replicas_(static_cast<size_t>(num_replicas)) {
  CHECK_GT(num_replicas, 0);
  CHECK_GT(options_.probe_interval_s, 0.0);
  CHECK_GT(options_.ewma_alpha, 0.0);
  CHECK_LE(options_.ewma_alpha, 1.0);
  CHECK_GE(options_.degrade_threshold, options_.clear_threshold);
  CHECK_GE(options_.hysteresis_samples, 1);
  CHECK_GE(options_.unreachable_after_samples, 1);
}

void HealthProber::Transition(int replica, double t, ReplicaHealth to) {
  ReplicaState& state = replicas_[static_cast<size_t>(replica)];
  if (state.health == to) {
    return;
  }
  if (state.health == ReplicaHealth::kDegraded) {
    CHECK(!state.intervals.empty());
    state.intervals.back().end_s = t;
  }
  if (to == ReplicaHealth::kDegraded) {
    state.intervals.push_back(
        DetectedInterval{t, std::numeric_limits<double>::infinity()});
  }
  if (state.health == ReplicaHealth::kUnreachable) {
    CHECK(!state.unreachable.empty());
    state.unreachable.back().end_s = t;
  }
  if (to == ReplicaHealth::kUnreachable) {
    state.unreachable.push_back(
        DetectedInterval{t, std::numeric_limits<double>::infinity()});
  }
  transitions_.push_back(HealthTransition{replica, t, state.health, to});
  state.health = to;
  state.samples_above = 0;
  state.samples_below = 0;
  state.silent_samples = 0;
}

void HealthProber::Observe(int replica, double t, double latency_ratio) {
  ReplicaState& state = replicas_[static_cast<size_t>(replica)];
  if (state.health == ReplicaHealth::kDown ||
      state.health == ReplicaHealth::kUnreachable) {
    // First post-repair / post-rejoin sample: whatever the EWMA described no
    // longer exists (restart, or the regime on the far side of the
    // partition), so re-seed and classify from scratch. Carrying the stale
    // estimate across the gap is the EWMA wind-up bug: one pre-outage
    // degraded episode would re-trip the breaker within hysteresis_samples
    // of a perfectly healthy rejoin.
    Transition(replica, t, ReplicaHealth::kHealthy);
    state.warm = false;
  } else if (state.warm && options_.ewma_staleness_s > 0.0 &&
             t - state.last_sample_s > options_.ewma_staleness_s) {
    // Silent gap without an explicit down/unreachable verdict: same
    // staleness argument, opt-in via ewma_staleness_s.
    state.warm = false;
  }
  state.silent_samples = 0;
  state.last_sample_s = t;
  if (!state.warm) {
    state.ewma = latency_ratio;
    state.warm = true;
  } else {
    state.ewma = options_.ewma_alpha * latency_ratio + (1.0 - options_.ewma_alpha) * state.ewma;
  }
  if (state.health == ReplicaHealth::kHealthy) {
    if (state.ewma >= options_.degrade_threshold) {
      if (++state.samples_above >= options_.hysteresis_samples) {
        Transition(replica, t, ReplicaHealth::kDegraded);
      }
    } else {
      state.samples_above = 0;
    }
  } else if (state.health == ReplicaHealth::kDegraded) {
    if (state.ewma <= options_.clear_threshold) {
      if (++state.samples_below >= options_.hysteresis_samples) {
        Transition(replica, t, ReplicaHealth::kHealthy);
      }
    } else {
      state.samples_below = 0;
    }
  }
}

void HealthProber::ObserveSilence(int replica, double t) {
  ReplicaState& state = replicas_[static_cast<size_t>(replica)];
  if (state.health == ReplicaHealth::kDown) {
    return;  // A crashed replica is expected to be silent.
  }
  if (state.health == ReplicaHealth::kUnreachable) {
    return;  // Continued silence sustains the verdict.
  }
  if (++state.silent_samples >= options_.unreachable_after_samples) {
    Transition(replica, t, ReplicaHealth::kUnreachable);
  }
}

void HealthProber::MarkDown(int replica, double t) {
  ReplicaState& state = replicas_[static_cast<size_t>(replica)];
  if (state.health != ReplicaHealth::kDown) {
    Transition(replica, t, ReplicaHealth::kDown);
  }
}

ReplicaHealth HealthProber::state(int replica) const {
  return replicas_[static_cast<size_t>(replica)].health;
}

double HealthProber::ewma(int replica) const {
  return replicas_[static_cast<size_t>(replica)].ewma;
}

const std::vector<DetectedInterval>& HealthProber::DegradedIntervals(int replica) const {
  return replicas_[static_cast<size_t>(replica)].intervals;
}

bool HealthProber::DegradedAt(int replica, double t) const {
  for (const DetectedInterval& interval : DegradedIntervals(replica)) {
    if (t >= interval.begin_s && t < interval.end_s) {
      return true;
    }
  }
  return false;
}

const std::vector<DetectedInterval>& HealthProber::UnreachableIntervals(int replica) const {
  return replicas_[static_cast<size_t>(replica)].unreachable;
}

bool HealthProber::UnreachableAt(int replica, double t) const {
  for (const DetectedInterval& interval : UnreachableIntervals(replica)) {
    if (t >= interval.begin_s && t < interval.end_s) {
      return true;
    }
  }
  return false;
}

}  // namespace sarathi
