#include "src/simulator/telemetry.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

namespace sarathi {

std::string CsvEscape(const std::string& value) {
  if (value.find_first_of(",\"\n\r") == std::string::npos) {
    return value;
  }
  std::string quoted = "\"";
  for (char c : value) {
    if (c == '"') {
      quoted += '"';
    }
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void WriteIterationLogCsv(const SimResult& result, std::ostream& out) {
  out << "iter,start_s,stage_time_s,exit_s,total_tokens,num_decodes,prefill_tokens,"
         "description\n";
  for (size_t i = 0; i < result.iterations.size(); ++i) {
    const IterationRecord& it = result.iterations[i];
    out << i << ',' << it.start_s << ',' << it.stage_time_s << ',' << it.exit_s << ','
        << it.total_tokens << ',' << it.num_decodes << ',' << it.prefill_tokens << ','
        << CsvEscape(it.description) << '\n';
  }
}

void WriteRequestMetricsCsv(const SimResult& result, std::ostream& out) {
  out << "id,arrival_s,scheduling_delay_s,ttft_s,completion_s,latency_s,num_tokens,"
         "p99_tbt_s,max_tbt_s,preemptions,deadline_s,failed_s,failure,retries,"
         "wasted_tokens,hedges,migrations,cached_prefill_tokens\n";
  for (const RequestMetrics& r : result.requests) {
    Summary tbt;
    tbt.AddAll(r.TbtSamples());
    double p99 = tbt.empty() ? 0.0 : tbt.Quantile(0.99);
    double max_tbt = tbt.empty() ? 0.0 : tbt.Max();
    double latency = r.completed() ? r.completion_s - r.arrival_s : -1.0;
    out << r.id << ',' << r.arrival_s << ',' << r.SchedulingDelay() << ',' << r.Ttft() << ','
        << r.completion_s << ',' << latency << ',' << r.token_times_s.size() << ',' << p99
        << ',' << max_tbt << ',' << r.preemptions << ',' << r.deadline_s << ',' << r.failed_s
        << ',' << FailureKindName(r.failure) << ',' << r.retries << ',' << r.wasted_tokens
        << ',' << r.hedges << ',' << r.migrations << ',' << r.cached_prefill_tokens << '\n';
  }
}

void WriteTbtSamplesCsv(const SimResult& result, std::ostream& out) {
  out << "request_id,token_index,tbt_s\n";
  for (const RequestMetrics& r : result.requests) {
    std::vector<double> samples = r.TbtSamples();
    for (size_t i = 0; i < samples.size(); ++i) {
      out << r.id << ',' << i + 1 << ',' << samples[i] << '\n';
    }
  }
}

void WriteAggregateCsv(const SimResult& result, std::ostream& out) {
  out << "metric,value\n";
  out << "scheduler," << CsvEscape(result.scheduler_name) << '\n';
  out << "requests," << result.requests.size() << '\n';
  out << "iterations," << result.num_iterations << '\n';
  out << "preemptions," << result.num_preemptions << '\n';
  out << "makespan_s," << result.makespan_s << '\n';
  out << "median_ttft_s," << result.MedianTtft() << '\n';
  out << "p99_tbt_s," << result.P99Tbt() << '\n';
  out << "max_tbt_s," << result.MaxTbt() << '\n';
  out << "median_scheduling_delay_s," << result.MedianSchedulingDelay() << '\n';
  out << "output_tokens," << result.total_output_tokens << '\n';
  out << "prefill_tokens," << result.total_prefill_tokens << '\n';
  out << "output_tokens_per_s," << result.OutputTokenThroughput() << '\n';
  out << "mfu," << result.Mfu() << '\n';
  out << "mbu," << result.Mbu() << '\n';
  out << "bubble_fraction," << result.BubbleFraction() << '\n';
  out << "good_requests," << result.CountGood() << '\n';
  out << "goodput_per_s," << result.Goodput() << '\n';
  out << "failed_requests," << result.CountFailed() << '\n';
  out << "timeout_requests," << result.CountFailed(FailureKind::kTimeout) << '\n';
  out << "crash_failed_requests," << result.CountFailed(FailureKind::kReplicaCrash) << '\n';
  out << "shed_requests," << result.num_shed << '\n';
  out << "retries," << result.TotalRetries() << '\n';
  out << "lost_output_tokens," << result.lost_output_tokens << '\n';
  out << "outages," << result.num_outages << '\n';
  out << "downtime_s," << result.downtime_s << '\n';
  out << "slowdown_episodes," << result.num_slowdown_episodes << '\n';
  out << "degraded_s," << result.degraded_s << '\n';
  out << "degraded_iterations," << result.degraded_iterations << '\n';
  out << "probe_transitions," << result.probe_transitions << '\n';
  out << "hedges_issued," << result.hedges_issued << '\n';
  out << "hedges_won," << result.hedges_won << '\n';
  out << "hedges_cancelled," << result.hedges_cancelled << '\n';
  out << "migrations," << result.migrations << '\n';
  out << "migrations_cancelled," << result.migrations_cancelled << '\n';
  out << "drain_failovers," << result.drain_failovers << '\n';
  out << "migrated_kv_bytes," << result.migrated_kv_bytes << '\n';
  out << "wasted_recompute_tokens," << result.WastedRecomputeTokens() << '\n';
  out << "shed_admission," << result.num_shed_admission << '\n';
  out << "shed_queue," << result.num_shed_queue << '\n';
  out << "browned_out," << result.num_browned_out << '\n';
  out << "overload_transitions," << result.overload_transitions << '\n';
  out << "retries_denied," << result.num_retries_denied << '\n';
  out << "hedges_suppressed," << result.num_hedges_suppressed << '\n';
  out << "backpressure_skips," << result.num_backpressure_skips << '\n';
  out << "kv_peak_blocks_in_use," << result.peak_kv_blocks << '\n';
  out << "kv_total_blocks," << result.total_kv_blocks << '\n';
  out << "kv_peak_utilization," << result.PeakKvUtilization() << '\n';
  out << "prefix_lookups," << result.prefix_lookups << '\n';
  out << "prefix_hits," << result.prefix_hits << '\n';
  out << "prefix_hit_rate,"
      << (result.prefix_lookups > 0
              ? static_cast<double>(result.prefix_hits) /
                    static_cast<double>(result.prefix_lookups)
              : 0.0)
      << '\n';
  out << "cached_prefill_tokens," << result.cached_prefill_tokens << '\n';
  out << "prefix_evictions," << result.prefix_evictions << '\n';
  out << "kv_peak_cached_blocks," << result.peak_cached_blocks << '\n';
  out << "domain_faults," << result.num_domain_faults << '\n';
  out << "partitions," << result.num_partitions << '\n';
  out << "partitioned_s," << result.partitioned_s << '\n';
  out << "partition_redispatches," << result.partition_redispatches << '\n';
  out << "partition_reconciled," << result.partition_reconciled << '\n';
  out << "cascade_sheds," << result.cascade_sheds << '\n';
  out << "cascade_engaged_s," << result.cascade_engaged_s << '\n';
  out << "slow_start_admits," << result.slow_start_admits << '\n';
  out << "timeout_retries," << result.timeout_retries << '\n';
  // Autoscale rows appear only for autoscaled runs, mirroring the
  // domains.csv pattern: runs without the feature keep producing exactly the
  // bytes they always did.
  if (result.peak_provisioned_replicas > 0) {
    out << "autoscale_events," << result.autoscale_events << '\n';
    out << "autoscale_out," << result.autoscale_out << '\n';
    out << "autoscale_in," << result.autoscale_in << '\n';
    out << "peak_provisioned_replicas," << result.peak_provisioned_replicas << '\n';
    out << "replica_seconds_provisioned," << result.replica_seconds_provisioned << '\n';
    out << "autoscale_cost_gpu_s," << result.autoscale_cost_gpu_s << '\n';
  }
}

void WriteDomainStatusCsv(const SimResult& result, std::ostream& out) {
  out << "domain,num_replicas,crashes,partitions,down_s,partitioned_s\n";
  for (const DomainStatus& d : result.domains) {
    out << d.domain << ',' << d.num_replicas << ',' << d.crashes << ',' << d.partitions
        << ',' << d.down_s << ',' << d.partitioned_s << '\n';
  }
}

void ReplaySloFromResult(const SimResult& result, SloMonitor* slo) {
  if (slo == nullptr || !slo->enabled()) {
    return;
  }
  struct Event {
    double t;
    SloSignal signal;
    QosClass qos;
    double value;  // latency sample for kTtft/kTbt; unused for outcomes
    bool is_outcome;
    bool good;
  };
  std::vector<Event> events;
  for (const RequestMetrics& r : result.requests) {
    if (!r.token_times_s.empty()) {
      double first = r.token_times_s.front();
      events.push_back({first, SloSignal::kTtft, r.qos, first - r.arrival_s, false, false});
      for (size_t i = 1; i < r.token_times_s.size(); ++i) {
        events.push_back({r.token_times_s[i], SloSignal::kTbt, r.qos,
                          r.token_times_s[i] - r.token_times_s[i - 1], false, false});
      }
    }
    if (r.completed()) {
      events.push_back({r.completion_s, SloSignal::kGoodput, r.qos, 0.0, true, r.good()});
    } else if (r.failed()) {
      events.push_back({r.failed_s, SloSignal::kGoodput, r.qos, 0.0, true, false});
    }
  }
  // The monitor's clock only moves forward; a time-sorted replay lands every
  // sample in its own burn-rate bucket instead of the tail one.
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) { return a.t < b.t; });
  for (const Event& e : events) {
    if (e.is_outcome) {
      slo->RecordOutcome(e.qos, e.good, e.t);
    } else {
      slo->RecordLatency(e.signal, e.qos, e.value, e.t);
    }
  }
  slo->AdvanceTo(result.makespan_s);
}

Status ExportTelemetry(const SimResult& result, const std::string& directory,
                       const std::string& prefix) {
  struct Section {
    const char* suffix;
    void (*writer)(const SimResult&, std::ostream&);
  };
  const Section sections[] = {
      {"iterations", &WriteIterationLogCsv},
      {"requests", &WriteRequestMetricsCsv},
      {"tbt", &WriteTbtSamplesCsv},
      {"aggregate", &WriteAggregateCsv},
  };
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return InternalError("cannot create directory " + directory + ": " + ec.message());
  }
  for (const Section& section : sections) {
    std::string path = directory + "/" + prefix + "_" + section.suffix + ".csv";
    std::ofstream out(path);
    if (!out) {
      return InternalError("cannot open " + path + " for writing");
    }
    section.writer(result, out);
    if (!out) {
      return InternalError("write failed for " + path);
    }
  }
  // Per-domain status rows exist only for runs with failure domains
  // configured; runs without them keep producing exactly the four files
  // they always did.
  if (!result.domains.empty()) {
    std::string path = directory + "/" + prefix + "_domains.csv";
    std::ofstream out(path);
    if (!out) {
      return InternalError("cannot open " + path + " for writing");
    }
    WriteDomainStatusCsv(result, out);
    if (!out) {
      return InternalError("write failed for " + path);
    }
  }
  return Status::Ok();
}

}  // namespace sarathi
