// Multi-replica serving: a front-end router over identical replicas.
//
// The paper evaluates per-replica capacity; production serving multiplies
// replicas behind a router. This module scales the simulator out: requests
// are assigned to a replica at arrival by a routing policy, each replica is
// simulated independently on its sub-trace, and the metrics merge. Routing
// decisions use only information available at assignment time (no oracle):
// round-robin, or least-outstanding-work by the tokens already assigned.

#ifndef SRC_SIMULATOR_CLUSTER_SIMULATOR_H_
#define SRC_SIMULATOR_CLUSTER_SIMULATOR_H_

#include <vector>

#include "src/simulator/replica_simulator.h"

namespace sarathi {

enum class RoutingPolicy {
  kRoundRobin,
  // Assign to the replica with the least estimated outstanding work: the sum
  // of (prompt + expected output) tokens of its still-unfinished assignments,
  // aged by an estimated service rate.
  kLeastOutstandingWork,
};

std::string_view RoutingPolicyName(RoutingPolicy policy);

struct ClusterOptions {
  SimulatorOptions replica;  // Every replica is identical.
  int num_replicas = 2;
  RoutingPolicy routing = RoutingPolicy::kLeastOutstandingWork;
  // Estimated replica service rate (tokens/s) used to age outstanding work
  // for kLeastOutstandingWork; <= 0 derives a default from the cost model.
  double estimated_tokens_per_s = 0.0;
};

class ClusterSimulator {
 public:
  explicit ClusterSimulator(const ClusterOptions& options);

  // Routes the trace, simulates every replica, merges metrics. The merged
  // SimResult keeps requests in original trace order; stage_busy_s
  // concatenates all replicas' stages.
  SimResult Run(const Trace& trace);

  // The per-replica assignment of the most recent Run (trace index ->
  // replica id), for tests and balance diagnostics.
  const std::vector<int>& last_assignment() const { return assignment_; }

 private:
  // Picks a replica for a request arriving at `now`.
  int Route(const Request& request, double now, std::vector<double>* outstanding_tokens,
            std::vector<double>* last_update, int* rr_cursor) const;

  ClusterOptions options_;
  double service_rate_;
  std::vector<int> assignment_;
};

}  // namespace sarathi

#endif  // SRC_SIMULATOR_CLUSTER_SIMULATOR_H_
