// Multi-replica serving: a failure-aware front-end router over identical
// replicas.
//
// The paper evaluates per-replica capacity; production serving multiplies
// replicas behind a router — and replicas fail. This module scales the
// simulator out and degrades it gracefully: requests are assigned to a
// replica at arrival by a routing policy, each replica is simulated
// independently on its sub-trace, and the metrics merge. Routing decisions
// use only information available at assignment time (no oracle): round-robin
// or least-outstanding-work, always restricted to replicas that are up at
// that moment.
//
// Fault handling (all seeded through FaultOptions, so runs are reproducible):
//  - Replica crashes (FaultInjector MTBF/MTTR schedules) interrupt every
//    request on the replica; the router re-routes interrupted requests to
//    survivors with capped retries and exponential backoff.
//  - Client timeouts abort requests whose deadline expires; expired requests
//    are never retried.
//  - Admission control sheds arrivals when even the least-loaded healthy
//    replica is more than `shed_outstanding_s` seconds of estimated work
//    behind, so P99 TBT saturates instead of diverging.

#ifndef SRC_SIMULATOR_CLUSTER_SIMULATOR_H_
#define SRC_SIMULATOR_CLUSTER_SIMULATOR_H_

#include <vector>

#include "src/simulator/fault_injector.h"
#include "src/simulator/replica_simulator.h"

namespace sarathi {

enum class RoutingPolicy {
  kRoundRobin,
  // Assign to the replica with the least estimated outstanding work: the sum
  // of (prompt + expected output) tokens of its still-unfinished assignments,
  // aged by an estimated service rate.
  kLeastOutstandingWork,
};

std::string_view RoutingPolicyName(RoutingPolicy policy);

struct ClusterOptions {
  SimulatorOptions replica;  // Every replica is identical.
  int num_replicas = 2;
  RoutingPolicy routing = RoutingPolicy::kLeastOutstandingWork;
  // Estimated replica service rate (tokens/s) used to age outstanding work
  // for kLeastOutstandingWork; <= 0 derives a default from the cost model.
  double estimated_tokens_per_s = 0.0;

  // ---- Fault model ----
  FaultOptions faults;
  // Re-route attempts granted to a request interrupted by a replica crash.
  int max_retries = 2;
  // First retry waits this long after the crash; each further retry doubles
  // the wait.
  double retry_backoff_s = 0.25;
  // Admission control: shed an arrival when the least-loaded healthy
  // replica's estimated outstanding work exceeds this many seconds of
  // service (<= 0 disables shedding). Retries are never shed.
  double shed_outstanding_s = 0.0;
  // Horizon for generating outage schedules; <= 0 derives one from the trace
  // span plus its estimated drain time.
  double fault_horizon_s = 0.0;
};

class ClusterSimulator {
 public:
  explicit ClusterSimulator(const ClusterOptions& options);

  // Routes the trace, simulates every replica, re-routes crash-interrupted
  // requests, merges metrics. The merged SimResult keeps the original trace
  // requests in trace order (forked siblings, if any, follow them);
  // stage_busy_s and replica_downtime_s concatenate all replicas' entries.
  SimResult Run(const Trace& trace);

  // The initial per-replica assignment of the most recent Run (trace index
  // -> replica id, -1 for shed requests), for tests and balance diagnostics.
  const std::vector<int>& last_assignment() const { return assignment_; }

  // The outage schedules the most recent Run injected (one vector per
  // replica), for tests and reporting.
  const std::vector<std::vector<ReplicaOutage>>& outage_schedules() const {
    return outage_schedules_;
  }

 private:
  struct RouterState {
    std::vector<double> outstanding_tokens;
    std::vector<double> last_update;
    int rr_cursor = 0;
  };

  // True if `replica` is inside an outage at time `t`.
  bool DownAt(int replica, double t) const;
  // Earliest time >= t at which any replica is up; t itself if one already is.
  double NextHealthyTime(double t) const;

  // Ages outstanding-work estimates to `now`.
  void AgeOutstanding(RouterState* state, double now) const;

  // Picks a replica for `tokens` of work arriving at `now` among replicas up
  // at `now`, avoiding `exclude` when any alternative exists. Returns -1 when
  // every replica is down.
  int Route(int64_t tokens, double now, int exclude, RouterState* state) const;

  ClusterOptions options_;
  double service_rate_;
  std::vector<int> assignment_;
  std::vector<std::vector<ReplicaOutage>> outage_schedules_;
};

}  // namespace sarathi

#endif  // SRC_SIMULATOR_CLUSTER_SIMULATOR_H_
