// Multi-replica serving: a failure-aware front-end router over identical
// replicas.
//
// The paper evaluates per-replica capacity; production serving multiplies
// replicas behind a router — and replicas fail. This module scales the
// simulator out and degrades it gracefully: requests are assigned to a
// replica at arrival by a routing policy, each replica is simulated
// independently on its sub-trace, and the metrics merge. Routing decisions
// use only information available at assignment time (no oracle): round-robin
// or least-outstanding-work, always restricted to replicas that are up at
// that moment.
//
// Fault handling (all seeded through FaultOptions, so runs are reproducible):
//  - Replica crashes (FaultInjector MTBF/MTTR schedules) interrupt every
//    request on the replica; the router re-routes interrupted requests to
//    survivors with capped retries and exponential backoff.
//  - Client timeouts abort requests whose deadline expires; expired requests
//    are never retried.
//  - Admission control sheds arrivals when even the least-loaded healthy
//    replica is more than `shed_outstanding_s` seconds of estimated work
//    behind, so P99 TBT saturates instead of diverging.
//
// Gray-failure handling (slowdowns leave a replica up but 1.5-4x slower):
//  - A HealthProber samples each replica's iteration-latency ratio on a fixed
//    cadence and classifies it healthy/degraded/down with EWMA + hysteresis,
//    so the router reacts with a realistic detection lag on both edges.
//  - Circuit breaker: routing prefers replicas not currently detected
//    degraded (new arrivals, retries, failover and hedge destinations alike),
//    falling back to degraded replicas only when nothing better is up.
//  - Degraded failover moves decoding requests off a detected-degraded
//    replica: kRecompute drains them and re-routes from scratch; kLiveMigrate
//    checkpoints their KV, streams it over a serialized migration link, and
//    the destination adopts it with zero recompute. A replica the router
//    starts migrating off is quarantined (no new work) for the rest of the
//    run so the checkpointed image stays consistent with what the
//    destination restored.
//  - Hedged dispatch: a request stuck on a detected-degraded replica is
//    speculatively re-dispatched to a healthy one after `hedge_after_s`; the
//    first attempt to finish wins and the loser is cancelled mid-service
//    (first-finisher-wins at response granularity — the client consumes the
//    winner's stream, the loser's tokens count as wasted duplicates).

#ifndef SRC_SIMULATOR_CLUSTER_SIMULATOR_H_
#define SRC_SIMULATOR_CLUSTER_SIMULATOR_H_

#include <memory>
#include <vector>

#include "src/robustness/cascade.h"
#include "src/simulator/fault_injector.h"
#include "src/simulator/health_prober.h"
#include "src/simulator/replica_simulator.h"

namespace sarathi {

// One provisioned interval of a replica under autoscaling: the replica
// accepts new work only while some window covers the routing instant. A still
// -open window has to_s = +infinity; closing a window stops new assignments
// but lets work already routed there drain (scale-in never kills requests).
struct ProvisionWindow {
  double from_s = 0.0;
  double to_s = 0.0;
};

// One autoscaler decision: replica `replica` was opened (out) or closed /
// cancelled (in) at decision time t_s. A scale-out opens the window at
// t_s + provisioning_lag_s; a scale-in of a still-pending launch cancels it.
struct ScaleEvent {
  double t_s = 0.0;
  int replica = -1;
  bool out = false;
};

// Metrics-driven autoscaler over the replica fleet. Enabled when
// min_replicas >= 1: replicas [0, min_replicas) are provisioned for the whole
// run (the floor that guarantees the router always has a destination), the
// rest open and close between min_replicas and ClusterOptions::num_replicas
// (the ceiling). Decisions are evaluated during the time-ordered arrival
// pass, at most one step per eval_interval_s, so the provision timeline is a
// pure function of the trace + options and later retry/failover rounds replay
// against a fixed schedule — which is what keeps parallel runs deterministic.
struct AutoscaleOptions {
  // <= 0 disables autoscaling entirely (every replica always provisioned).
  int min_replicas = 0;
  // Scale out when the mean backlog of provisioned replicas (estimated
  // outstanding work / service rate) exceeds this many seconds.
  double scale_out_queue_s = 4.0;
  // Scale in when the mean backlog falls below this many seconds.
  double scale_in_queue_s = 0.5;
  // A newly opened replica takes this long to boot before admitting work.
  double provisioning_lag_s = 30.0;
  // Optional latency signal: also scale out when the windowed P99 of the
  // cost-model-predicted TBT of routed arrivals exceeds this bound (<= 0
  // disables the signal; tbt_window_s is the sliding sample window).
  double tbt_slo_s = 0.0;
  double tbt_window_s = 60.0;
  // Minimum spacing between signal evaluations and between scale decisions.
  double eval_interval_s = 5.0;
  double cooldown_s = 30.0;
};

enum class RoutingPolicy {
  kRoundRobin,
  // Assign to the replica with the least estimated outstanding work: the sum
  // of (prompt + expected output) tokens of its still-unfinished assignments,
  // aged by an estimated service rate.
  kLeastOutstandingWork,
};

std::string_view RoutingPolicyName(RoutingPolicy policy);

// What the router does with decode-phase requests on a detected-degraded
// replica: nothing, drain-and-recompute elsewhere, or live KV migration.
enum class FailoverMode {
  kNone = 0,
  kRecompute,
  kLiveMigrate,
};

std::string_view FailoverModeName(FailoverMode mode);

struct ClusterOptions {
  SimulatorOptions replica;  // Every replica is identical.
  int num_replicas = 2;
  RoutingPolicy routing = RoutingPolicy::kLeastOutstandingWork;
  // Estimated replica service rate (tokens/s) used to age outstanding work
  // for kLeastOutstandingWork; <= 0 derives a default from the cost model.
  double estimated_tokens_per_s = 0.0;

  // ---- Fault model ----
  FaultOptions faults;
  // Re-route attempts granted to a request interrupted by a replica crash.
  int max_retries = 2;
  // First retry waits this long after the crash; each further retry doubles
  // the wait.
  double retry_backoff_s = 0.25;
  // Admission control: shed an arrival when the least-loaded healthy
  // replica's estimated outstanding work exceeds this many seconds of
  // service (<= 0 disables shedding). Retries are never shed.
  double shed_outstanding_s = 0.0;
  // Horizon for generating outage schedules; <= 0 derives one from the trace
  // span plus its estimated drain time.
  double fault_horizon_s = 0.0;

  // ---- Gray-failure handling ----
  // Health-prober cadence and classifier thresholds.
  ProberOptions prober;
  // Circuit breaker: prefer replicas not currently detected degraded when
  // routing (arrivals, retries, failover and hedge destinations).
  bool avoid_degraded = true;
  // Failover for decode-phase requests caught on a detected-degraded replica.
  FailoverMode degraded_failover = FailoverMode::kNone;
  // The router waits this long after detection (or after the request's first
  // token, whichever is later) before pulling a request off the replica.
  double migration_delay_s = 0.25;
  // Live-migration link: serialized KV transfers at this bandwidth (bytes/s)
  // plus a fixed per-transfer latency. Transfer size is the checkpointed
  // context (prompt + generated - 1 tokens) times ModelSpec::KvBytesPerToken.
  double migration_bandwidth_Bps = 25e9;
  double migration_latency_s = 10e-6;
  // Hedged dispatch: re-dispatch a request still unfinished this long after
  // its replica was detected degraded (<= 0 disables hedging).
  double hedge_after_s = 0.0;
  // Per-replica slowdown schedules overriding FaultInjector::SlowdownsFor
  // (benchmarks pin episodes to exact replicas/times). Empty = derive from
  // `faults`; replicas beyond the vector get no episodes.
  std::vector<std::vector<SlowdownEpisode>> slowdown_overrides;

  // ---- Overload control (src/robustness) ----
  // Full-jitter crash-retry backoff: uniform in [0, retry_backoff_s *
  // 2^attempt), deterministic in (faults.seed, request id, attempt). Off
  // keeps the legacy un-jittered exponential backoff.
  bool retry_jitter = false;
  // Token-bucket retry budget: every initially-routed request credits
  // `retry_budget_ratio` tokens (balance capped at retry_budget_burst) and
  // every crash retry spends one; a request denied a token keeps its crash
  // failure. Bounds retry amplification to burst + ratio * arrivals, which is
  // what damps a metastable retry storm. ratio <= 0 disables.
  double retry_budget_ratio = 0.0;
  double retry_budget_burst = 8.0;
  // Backpressure propagation: when any allowed replica's estimated
  // outstanding work is at most this many seconds of service, routing is
  // restricted to such replicas (a bounded per-replica queue as seen from the
  // router). <= 0 disables.
  double backpressure_queue_s = 0.0;
  // Suspend hedged dispatch while every live replica's estimated outstanding
  // work exceeds this many seconds — a hedge under cluster-wide saturation
  // only adds load. <= 0 disables suppression.
  double hedge_suppress_outstanding_s = 0.0;

  // ---- Cascade resilience (correlated domains, partitions, recovery) ----
  // Correlated failure domains and network partitions arrive through
  // `faults` (FaultOptions::num_domains / domain_mtbf_s /
  // domain_partition_fraction). Replicas are assigned to contiguous balanced
  // domains; a domain crash merges into every member's outage schedule, a
  // domain partition leaves members executing but unreachable.
  //
  // Client timeout-retry behavior: a request whose deadline expired is
  // re-offered to the cluster up to this many times, each after a fixed
  // (deliberately synchronized — that is what real fleets of clients do)
  // timeout_retry_backoff_s, with a fresh full deadline. This is the
  // amplification loop that makes overload metastable: every timed-out
  // request comes back as new load. 0 disables (default).
  int timeout_retry_max = 0;
  double timeout_retry_backoff_s = 1.0;
  // Cascade breaker (src/robustness/cascade.h): compares offered load
  // against surviving capacity (from the shared cost model and the fault
  // schedules) and, while engaged, sheds arrivals beyond headroom x capacity
  // and denies timeout-retries outright. Default off.
  CascadeBreakerOptions cascade;
  // Slow-start staggered re-admission: a replica rejoining after a crash or
  // partition takes new work only through a ramped admission cap, members of
  // the same domain staggered so a domain rejoin is not a synchronized
  // re-admission spike. Default off.
  SlowStartOptions slow_start;
  // Nominal per-replica queue bound (seconds of service) the slow-start ramp
  // scales: a ramping replica at fraction f admits work only while its
  // estimated outstanding work is under f x this bound. <= 0 derives
  // backpressure_queue_s when set, else 4 s.
  double slow_start_cap_s = 0.0;

  // ---- Parallel sharded execution ----
  // Worker count for per-replica simulation. Replicas partition into
  // contiguous shards (shard of replica r = r * shards / num_replicas); each
  // round's dirty replicas simulate on a ThreadPool, one task per shard with
  // its own memoized cost model and invariant checker, and everything merges
  // back in replica-index order. 1 (default) is the pre-existing serial path;
  // <= 0 resolves to the hardware concurrency. Results are byte-identical for
  // every value — see docs/performance.md for the argument.
  int jobs = 1;

  // ---- Autoscaling ----
  // Off by default (min_replicas = 0: all num_replicas always provisioned).
  AutoscaleOptions autoscale;
};

class ClusterSimulator {
 public:
  explicit ClusterSimulator(const ClusterOptions& options);

  // Routes the trace, simulates every replica, re-routes crash-interrupted
  // requests, applies degraded failover and hedging, merges metrics. The
  // merged SimResult keeps the original trace requests in trace order (forked
  // siblings, if any, follow them); stage_busy_s and replica_downtime_s
  // concatenate all replicas' entries.
  SimResult Run(const Trace& trace);

  // The initial per-replica assignment of the most recent Run (trace index
  // -> replica id, -1 for shed requests), for tests and balance diagnostics.
  const std::vector<int>& last_assignment() const { return assignment_; }

  // The outage schedules the most recent Run injected (one vector per
  // replica), for tests and reporting.
  const std::vector<std::vector<ReplicaOutage>>& outage_schedules() const {
    return outage_schedules_;
  }

  // The slowdown schedules the most recent Run injected (one vector per
  // replica), for tests and reporting.
  const std::vector<std::vector<SlowdownEpisode>>& slowdown_schedules() const {
    return slowdown_schedules_;
  }

  // The degradation intervals the prober detected in the most recent Run
  // (one vector per replica; detection lags the injected episodes by EWMA
  // warm-up plus hysteresis on both edges).
  const std::vector<std::vector<DetectedInterval>>& detected_degraded() const {
    return detected_;
  }

  // The ground-truth partition windows the most recent Run injected (one
  // vector per replica; ReplicaOutage reused as a plain interval — the
  // replica keeps executing, it is only unreachable).
  const std::vector<std::vector<ReplicaOutage>>& partition_schedules() const {
    return partition_windows_;
  }

  // The unreachable intervals the prober detected in the most recent Run
  // (silence hysteresis on the onset edge, first answered probe on the clear
  // edge).
  const std::vector<std::vector<DetectedInterval>>& detected_unreachable() const {
    return detected_unreachable_;
  }

  // The replica -> failure-domain assignment of the most recent Run (empty
  // when no domains are configured).
  const std::vector<int>& domain_assignment() const { return domain_of_; }

  // The cascade breaker's engaged intervals in the most recent Run.
  const std::vector<CascadeInterval>& cascade_engaged() const { return cascade_engaged_; }

  // Per-replica provisioned windows of the most recent Run. Empty vectors
  // when autoscaling is off (every replica is then always provisioned).
  const std::vector<std::vector<ProvisionWindow>>& provision_windows() const {
    return provision_windows_;
  }

  // The autoscaler's decisions in the most recent Run, in time order.
  const std::vector<ScaleEvent>& scale_events() const { return scale_events_; }

  // Aggregated memo statistics of the cluster cost model plus every shard
  // model, for the cache-parity regression test: parallel runs must keep hit
  // rates within noise of serial runs.
  CostCacheStats cost_cache_stats() const;

 private:
  struct RouterState {
    std::vector<double> outstanding_tokens;
    std::vector<double> last_update;
    int rr_cursor = 0;
  };

  // True if `replica` is inside an outage at time `t`.
  bool DownAt(int replica, double t) const;
  // True if `replica` is inside a ground-truth partition at time `t` (still
  // executing, unreachable from the router).
  bool PartitionedAt(int replica, double t) const;
  // The injected slowdown factor of `replica` at time `t` (1.0 when healthy).
  double SlowdownFactorAt(int replica, double t) const;
  // True if the prober had classified `replica` degraded at time `t`.
  bool DetectedDegradedAt(int replica, double t) const;
  // True if the prober had classified `replica` unreachable at time `t`.
  bool DetectedUnreachableAt(int replica, double t) const;
  // Slow-start admission fraction of `replica` at `t`: 1 when no ramp is
  // active, 0 before its staggered gate opens, the linear ramp in between.
  double SlowStartFractionAt(int replica, double t) const;
  // True if `replica` is provisioned at time `t` (always true when
  // autoscaling is off).
  bool ProvisionedAt(int replica, double t) const;
  // Earliest time >= t at which any replica is up; t itself if one already is.
  double NextHealthyTime(double t) const;

  // Ages outstanding-work estimates to `now`.
  void AgeOutstanding(RouterState* state, double now) const;

  // Picks a replica for `tokens` of work arriving at `now` among replicas up
  // and not quarantined at `now`, avoiding `exclude` when any alternative
  // exists and preferring replicas not detected degraded, then not
  // backpressured (ClusterOptions::backpressure_queue_s). Returns -1 when no
  // replica qualifies. Non-const: it advances the rotating cursor, the
  // outstanding-work estimates and the backpressure-skip counter.
  int Route(int64_t tokens, double now, int exclude, RouterState* state);

  ClusterOptions options_;
  // One cost model for the whole cluster, built once at construction: the
  // service-rate estimate and every serial replica simulation — including
  // retry/failover/hedge re-simulation rounds — share its memo cache instead
  // of each rebuilding an IterationCostModel per probe. Sharded runs use
  // shard_models_ instead (the memo caches are not thread-safe; cached vs
  // uncached evaluation is bit-identical, so the split never changes results).
  std::shared_ptr<IterationCostModel> cost_model_;
  std::vector<std::shared_ptr<IterationCostModel>> shard_models_;
  double service_rate_;
  std::vector<int> assignment_;
  std::vector<std::vector<ReplicaOutage>> outage_schedules_;
  std::vector<std::vector<SlowdownEpisode>> slowdown_schedules_;
  std::vector<std::vector<DetectedInterval>> detected_;
  // ---- Cascade-resilience state (rebuilt per Run) ----
  std::vector<std::vector<ReplicaOutage>> partition_windows_;
  std::vector<std::vector<DetectedInterval>> detected_unreachable_;
  std::vector<int> domain_of_;        // Replica -> domain (-1 without domains).
  std::vector<int> domain_index_of_;  // 0-based index within the domain.
  // Rejoin instants (crash repair or partition heal) per replica, sorted —
  // each opens a slow-start ramp staggered by domain_index_of_.
  std::vector<std::vector<double>> rejoins_;
  std::vector<CascadeInterval> cascade_engaged_;
  int64_t slow_start_admits_ = 0;
  // Replicas the router is migrating off: no new work for the rest of the
  // run, so the checkpointed KV images stay consistent.
  std::vector<bool> quarantined_;
  // Routing decisions of the most recent Run that avoided a backpressured
  // replica (reset per Run, reported as SimResult::num_backpressure_skips).
  int64_t backpressure_skips_ = 0;
  // ---- Autoscaler state (rebuilt per Run) ----
  bool autoscale_active_ = false;
  std::vector<std::vector<ProvisionWindow>> provision_windows_;
  std::vector<ScaleEvent> scale_events_;
  // O(1) routing fast path: valid while no fault/detection signal exists, the
  // policy is round-robin, and neither backpressure nor slow-start gating is
  // configured — every Route() call then reduces to advancing the cursor over
  // the (contiguous) provisioned prefix. open_replicas_ tracks that prefix
  // length during the arrival pass; the flag drops to requiring
  // !autoscale_active_ afterwards (see Run).
  bool fast_route_ = false;
  int open_replicas_ = 0;
};

}  // namespace sarathi

#endif  // SRC_SIMULATOR_CLUSTER_SIMULATOR_H_
