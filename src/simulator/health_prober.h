// Health prober: classifies replicas healthy / degraded / down from observed
// iteration-latency ratios.
//
// Gray failures leave a replica "up" while its iterations quietly run 1.5-4x
// slower; a router that only tracks liveness keeps feeding it work and every
// request routed there blows its TBT SLO. The prober maintains a per-replica
// EWMA of the observed iteration-time ratio (observed / healthy-baseline
// cost-model time) and flips state only after a run of consecutive samples
// crosses a threshold — hysteresis, so transient jitter spikes do not flap
// the circuit breaker. Separate trip and clear thresholds give the classifier
// a dead band; crash outages are fed in via MarkDown/MarkUp.
//
// Everything is deterministic and offline-friendly: the cluster simulator
// feeds the prober a fixed probe cadence over the run horizon and reads back
// the detected degradation intervals, which gives the control loop a
// realistic detection lag (EWMA warm-up + hysteresis) on both edges.

#ifndef SRC_SIMULATOR_HEALTH_PROBER_H_
#define SRC_SIMULATOR_HEALTH_PROBER_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace sarathi {

// kUnreachable is the partition verdict: probes go unanswered (silence) but
// the connection is not refused, so the replica may well still be executing.
// It is distinct from kDown (crash: connection refused, state lost) because
// the router must treat the two differently — a dead replica's work needs a
// fresh retry, a partitioned replica's work may complete on the far side and
// must be reconciled at rejoin.
enum class ReplicaHealth { kHealthy = 0, kDegraded, kDown, kUnreachable };

std::string_view ReplicaHealthName(ReplicaHealth health);

struct ProberOptions {
  // Probe cadence: one latency-ratio sample per replica per interval.
  double probe_interval_s = 0.25;
  // EWMA smoothing factor for the latency ratio (1 = no smoothing).
  double ewma_alpha = 0.3;
  // Trip when the EWMA holds at or above this ratio...
  double degrade_threshold = 1.4;
  // ...clear when it falls back to or below this ratio (dead band between).
  double clear_threshold = 1.15;
  // Consecutive samples past a threshold required to flip state.
  int hysteresis_samples = 3;
  // Consecutive unanswered probes (ObserveSilence) before a replica is
  // classified kUnreachable. Silence is not a crash: the first missed probe
  // could be a stalled iteration, so the verdict needs its own hysteresis.
  int unreachable_after_samples = 3;
  // EWMA staleness guard: when more than this much time passes between two
  // latency samples of a replica, the old EWMA is discarded and the next
  // sample re-seeds it (the estimate describes a regime that no longer
  // exists). <= 0 disables; rejoin from kDown or kUnreachable always
  // re-seeds regardless.
  double ewma_staleness_s = 0.0;
};

// One detected degradation interval of a replica, in absolute simulation
// time. end_s is +infinity while the episode is still open (degradation
// persisted to the end of the observation horizon).
struct DetectedInterval {
  double begin_s = 0.0;
  double end_s = 0.0;
};

// One classifier state change, for telemetry.
struct HealthTransition {
  int replica = 0;
  double time_s = 0.0;
  ReplicaHealth from = ReplicaHealth::kHealthy;
  ReplicaHealth to = ReplicaHealth::kHealthy;
};

class HealthProber {
 public:
  HealthProber(int num_replicas, const ProberOptions& options);

  // Feeds one iteration-latency ratio sample (observed / healthy baseline,
  // >= 1 when degraded) for `replica` at time `t`. A replica marked down
  // transitions back to healthy (fresh EWMA) on its first post-repair sample.
  void Observe(int replica, double t, double latency_ratio);

  // Feeds one unanswered probe (no response, connection NOT refused) for
  // `replica` at time `t`. After `unreachable_after_samples` consecutive
  // silences the replica is classified kUnreachable; the next answered
  // Observe clears it back to healthy with a fresh EWMA (the stale
  // pre-partition estimate must not re-trip the degraded breaker — the EWMA
  // wind-up bug). Ignored while the replica is marked down.
  void ObserveSilence(int replica, double t);

  // Crash-outage edges, fed from the outage schedule.
  void MarkDown(int replica, double t);

  ReplicaHealth state(int replica) const;
  double ewma(int replica) const;

  // Detected degradation intervals so far, in order. Open intervals have
  // end_s = +infinity.
  const std::vector<DetectedInterval>& DegradedIntervals(int replica) const;

  // True if `replica` was classified degraded at time `t`.
  bool DegradedAt(int replica, double t) const;

  // Detected unreachable intervals so far, in order. Open intervals have
  // end_s = +infinity.
  const std::vector<DetectedInterval>& UnreachableIntervals(int replica) const;

  // True if `replica` was classified unreachable at time `t`.
  bool UnreachableAt(int replica, double t) const;

  const std::vector<HealthTransition>& transitions() const { return transitions_; }

 private:
  struct ReplicaState {
    ReplicaHealth health = ReplicaHealth::kHealthy;
    double ewma = 1.0;
    bool warm = false;  // First sample seeds the EWMA directly.
    int samples_above = 0;
    int samples_below = 0;
    int silent_samples = 0;
    double last_sample_s = 0.0;  // Time of the last answered Observe.
    std::vector<DetectedInterval> intervals;
    std::vector<DetectedInterval> unreachable;
  };

  void Transition(int replica, double t, ReplicaHealth to);

  ProberOptions options_;
  std::vector<ReplicaState> replicas_;
  std::vector<HealthTransition> transitions_;
};

}  // namespace sarathi

#endif  // SRC_SIMULATOR_HEALTH_PROBER_H_
