// Health prober: classifies replicas healthy / degraded / down from observed
// iteration-latency ratios.
//
// Gray failures leave a replica "up" while its iterations quietly run 1.5-4x
// slower; a router that only tracks liveness keeps feeding it work and every
// request routed there blows its TBT SLO. The prober maintains a per-replica
// EWMA of the observed iteration-time ratio (observed / healthy-baseline
// cost-model time) and flips state only after a run of consecutive samples
// crosses a threshold — hysteresis, so transient jitter spikes do not flap
// the circuit breaker. Separate trip and clear thresholds give the classifier
// a dead band; crash outages are fed in via MarkDown/MarkUp.
//
// Everything is deterministic and offline-friendly: the cluster simulator
// feeds the prober a fixed probe cadence over the run horizon and reads back
// the detected degradation intervals, which gives the control loop a
// realistic detection lag (EWMA warm-up + hysteresis) on both edges.

#ifndef SRC_SIMULATOR_HEALTH_PROBER_H_
#define SRC_SIMULATOR_HEALTH_PROBER_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace sarathi {

enum class ReplicaHealth { kHealthy = 0, kDegraded, kDown };

std::string_view ReplicaHealthName(ReplicaHealth health);

struct ProberOptions {
  // Probe cadence: one latency-ratio sample per replica per interval.
  double probe_interval_s = 0.25;
  // EWMA smoothing factor for the latency ratio (1 = no smoothing).
  double ewma_alpha = 0.3;
  // Trip when the EWMA holds at or above this ratio...
  double degrade_threshold = 1.4;
  // ...clear when it falls back to or below this ratio (dead band between).
  double clear_threshold = 1.15;
  // Consecutive samples past a threshold required to flip state.
  int hysteresis_samples = 3;
};

// One detected degradation interval of a replica, in absolute simulation
// time. end_s is +infinity while the episode is still open (degradation
// persisted to the end of the observation horizon).
struct DetectedInterval {
  double begin_s = 0.0;
  double end_s = 0.0;
};

// One classifier state change, for telemetry.
struct HealthTransition {
  int replica = 0;
  double time_s = 0.0;
  ReplicaHealth from = ReplicaHealth::kHealthy;
  ReplicaHealth to = ReplicaHealth::kHealthy;
};

class HealthProber {
 public:
  HealthProber(int num_replicas, const ProberOptions& options);

  // Feeds one iteration-latency ratio sample (observed / healthy baseline,
  // >= 1 when degraded) for `replica` at time `t`. A replica marked down
  // transitions back to healthy (fresh EWMA) on its first post-repair sample.
  void Observe(int replica, double t, double latency_ratio);

  // Crash-outage edges, fed from the outage schedule.
  void MarkDown(int replica, double t);

  ReplicaHealth state(int replica) const;
  double ewma(int replica) const;

  // Detected degradation intervals so far, in order. Open intervals have
  // end_s = +infinity.
  const std::vector<DetectedInterval>& DegradedIntervals(int replica) const;

  // True if `replica` was classified degraded at time `t`.
  bool DegradedAt(int replica, double t) const;

  const std::vector<HealthTransition>& transitions() const { return transitions_; }

 private:
  struct ReplicaState {
    ReplicaHealth health = ReplicaHealth::kHealthy;
    double ewma = 1.0;
    bool warm = false;  // First sample seeds the EWMA directly.
    int samples_above = 0;
    int samples_below = 0;
    std::vector<DetectedInterval> intervals;
  };

  void Transition(int replica, double t, ReplicaHealth to);

  ProberOptions options_;
  std::vector<ReplicaState> replicas_;
  std::vector<HealthTransition> transitions_;
};

}  // namespace sarathi

#endif  // SRC_SIMULATOR_HEALTH_PROBER_H_
