#include "src/simulator/replica_simulator.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>

#include "src/common/logging.h"
#include "src/memory/block_manager.h"
#include "src/memory/prefix_cache.h"
#include "src/obs/metrics_registry.h"
#include "src/robustness/admission.h"
#include "src/robustness/bounded_queue.h"
#include "src/scheduler/scheduler_factory.h"
#include "src/verify/invariant_checker.h"

namespace sarathi {
namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

struct InFlightBatch {
  ScheduledBatch batch;
  double start_s = 0.0;
  double exit_s = 0.0;
};

}  // namespace

ReplicaSimulator::ReplicaSimulator(const SimulatorOptions& options) : options_(options) {
  std::shared_ptr<IterationCostModel> cost_model = options_.cost_model;
  if (cost_model == nullptr) {
    cost_model = std::make_shared<IterationCostModel>(options_.model, options_.cluster,
                                                      options_.parallel);
  }
  engine_ = std::make_unique<SimulatedEngine>(std::move(cost_model), options_.reuse_buffers);
}

SimResult ReplicaSimulator::Run(const Trace& trace) {
  const int num_stages = engine_->num_stages();

  AllocatorOptions allocator_options;
  allocator_options.capacity_tokens = options_.kv_capacity_tokens > 0
                                          ? options_.kv_capacity_tokens
                                          : engine_->cost_model().MaxKvTokens();
  allocator_options.block_size = options_.block_size;
  allocator_options.watermark = options_.watermark;
  allocator_options.sliding_window = options_.model.sliding_window;
  allocator_options.max_seq_len =
      options_.kv_max_seq_len > 0 ? options_.kv_max_seq_len : options_.model.max_seq_len;
  // Prefix caching requires stable position->block identity, which a sliding
  // window destroys (blocks are recycled in place as the window advances).
  // Windowed models therefore degrade kPagedCached to the plain paged
  // manager instead of failing the run.
  AllocatorKind allocator_kind = options_.allocator_kind;
  if (allocator_kind == AllocatorKind::kPagedCached && options_.model.sliding_window > 0) {
    allocator_kind = AllocatorKind::kPaged;
  }
  std::unique_ptr<KvAllocator> allocator =
      MakeAllocator(allocator_kind, options_.scheduler.policy, allocator_options);
  std::unique_ptr<Scheduler> scheduler = MakeScheduler(options_.scheduler, allocator.get());

  // Parallel sampling (num_samples > 1) forks siblings at prefill completion
  // and requires paged memory for the zero-copy prompt sharing.
  bool any_forking = false;
  for (const auto& r : trace.requests) {
    CHECK_GE(r.num_samples, 1);
    any_forking |= r.num_samples > 1;
  }
  auto* paged = dynamic_cast<PagedBlockManager*>(allocator.get());
  CHECK(!any_forking || paged != nullptr)
      << "num_samples > 1 requires a paged-memory policy (sarathi/vllm/fastserve/vtc)";
  // Non-null iff the run uses the radix prefix cache (kPagedCached, not
  // downgraded above); drives admission-time lookups and end-of-run audit.
  auto* prefix_cache = dynamic_cast<PrefixCachingAllocator*>(allocator.get());

  // Observability hooks: the simulator owns the clock; schedulers and the
  // allocator emit against it. Null hooks cost one branch per emission site.
  ObsHooks obs;
  obs.tracer = options_.tracer;
  obs.metrics = options_.metrics;
  obs.verify = options_.checker;
  obs.flight = options_.flight;
  if (obs.active()) {
    allocator->set_obs(&obs);
    scheduler->set_obs(&obs);
  }
  InvariantChecker* checker = options_.checker;
  if (checker != nullptr) {
    if (options_.flight != nullptr) {
      checker->set_flight(options_.flight);
    }
    checker->BeginRun(scheduler.get(), allocator.get(),
                      scheduler->name() + "/replica" + std::to_string(options_.trace_pid));
  }
  Tracer* tracer = obs.ActiveTracer();
  MetricsRegistry* metrics = obs.metrics;
  FlightRecorder* flight = options_.flight;
  SloMonitor* slo_monitor = options_.slo;
  const int fpid = options_.trace_pid;
  if (tracer != nullptr) {
    tracer->set_default_pid(options_.trace_pid);
    tracer->SetProcessName(options_.trace_pid, "replica " + std::to_string(options_.trace_pid));
    for (int s = 0; s < num_stages; ++s) {
      tracer->SetThreadName(s, "stage " + std::to_string(s));
    }
    if (!options_.outages.empty() || !options_.slowdowns.empty()) {
      tracer->SetThreadName(num_stages, "faults");
    }
  }

  SimResult result;
  result.scheduler_name = scheduler->name();
  result.stage_busy_s.assign(static_cast<size_t>(num_stages), 0.0);

  std::vector<std::unique_ptr<RequestState>> states;
  states.reserve(trace.size());
  result.requests.resize(trace.size());
  for (size_t i = 0; i < trace.size(); ++i) {
    states.push_back(std::make_unique<RequestState>(trace.requests[i]));
    if (trace.requests[i].restored_generated > 0) {
      states.back()->RestoreFromMigration(trace.requests[i].restored_generated);
    }
    result.requests[i].id = trace.requests[i].id;
    result.requests[i].arrival_s = trace.requests[i].arrival_time_s;
    result.requests[i].deadline_s = trace.requests[i].deadline_s;
    result.requests[i].qos = trace.requests[i].qos;
    if (options_.reuse_buffers) {
      // One emission per output token; reserving up front keeps steady-state
      // iterations free of telemetry-buffer growth.
      result.requests[i].token_times_s.reserve(
          static_cast<size_t>(std::max<int64_t>(0, trace.requests[i].output_tokens)));
    }
  }
  // Each request carries its metrics slot so the hot loop resolves
  // request -> RequestMetrics without hashing.
  for (size_t i = 0; i < states.size(); ++i) {
    states[i]->set_slot(static_cast<int64_t>(i));
  }

  // Request lifecycle spans: one async "request" span per request (keyed by
  // request id), with a nested child span naming the current phase. The
  // phases a request moves through: queued -> prefill -> decode -> closed,
  // with crash recomputes looping back to queued. Chrome async events with
  // the same (category, id) but distinct names render nested in Perfetto.
  enum SpanPhase : uint8_t { kSpanNone = 0, kSpanQueued, kSpanPrefill, kSpanDecode, kSpanClosed };
  std::vector<uint8_t> span_phase(trace.size(), kSpanNone);
  // Async spans are keyed by (pid, category, id), but cluster retry rounds
  // re-dispatch the same request id — two attempts on one replica would
  // cross-match begins/ends. Each attempt's span id therefore folds in its
  // retry round; round 0 keeps the raw id (byte-identical traces when no
  // retries happen). Forked siblings are always round 0.
  std::vector<int64_t> span_round(trace.size(), 0);
  for (size_t i = 0; i < trace.size(); ++i) {
    span_round[i] = trace.requests[i].retry_round;
  }
  auto span_name = [](uint8_t phase) -> const char* {
    switch (phase) {
      case kSpanQueued:
        return "queued";
      case kSpanPrefill:
        return "prefill";
      case kSpanDecode:
        return "decode";
      default:
        return "";
    }
  };
  // Moves request `idx`'s lifecycle span to `phase` at time `t`, closing the
  // open child span (and, on kSpanClosed, the request span itself).
  auto span_transition = [&](size_t idx, uint8_t phase, double t) {
    if (tracer == nullptr) {
      return;
    }
    uint8_t current = span_phase[idx];
    if (current == phase || current == kSpanClosed) {
      return;
    }
    int64_t request_id = result.requests[idx].id;
    int64_t round = span_round[idx];
    int64_t id = SpanIdForAttempt(request_id, round);
    if (current == kSpanNone) {
      if (round > 0) {
        tracer->AsyncBegin("request", "request", id, t,
                           {Arg("request", request_id), Arg("round", round)});
      } else {
        tracer->AsyncBegin("request", "request", id, t, {Arg("request", request_id)});
      }
    } else {
      tracer->AsyncEnd("request", span_name(current), id, t);
    }
    if (phase == kSpanClosed) {
      tracer->AsyncEnd("request", "request", id, t);
    } else {
      tracer->AsyncBegin("request", span_name(phase), id, t);
    }
    span_phase[idx] = phase;
  };

  // Parallel-sampling plans: parent -> siblings still to fork.
  std::unordered_map<const RequestState*, int64_t> pending_forks;
  for (size_t i = 0; i < states.size(); ++i) {
    if (trace.requests[i].num_samples > 1) {
      pending_forks.emplace(states[i].get(), trace.requests[i].num_samples - 1);
    }
  }
  int64_t next_fork_id = 1000000000;

  std::vector<double> stage_free(static_cast<size_t>(num_stages), 0.0);
  std::vector<InFlightBatch> in_flight;
  in_flight.reserve(static_cast<size_t>(num_stages) + 1);
  // Reused per-iteration shape scratch for MFU/MBU accounting.
  BatchWork work_scratch;
  size_t next_arrival = 0;
  double now = 0.0;
  double first_start = -1.0;
  double last_exit = 0.0;

  // Client deadlines, sorted by absolute expiry. Only original trace requests
  // carry deadlines; forked siblings never do.
  std::vector<std::pair<double, size_t>> deadline_queue;
  for (size_t i = 0; i < trace.size(); ++i) {
    if (trace.requests[i].deadline_s > 0.0) {
      deadline_queue.emplace_back(
          trace.requests[i].arrival_time_s + trace.requests[i].deadline_s, i);
    }
  }
  std::sort(deadline_queue.begin(), deadline_queue.end());
  size_t deadline_cursor = 0;
  // Expired requests that were locked in an in-flight batch when their
  // deadline passed; aborted as soon as the batch exits.
  std::vector<std::pair<double, size_t>> expired_locked;

  size_t next_outage = 0;
  size_t slowdown_cursor = 0;
  // Crash-induced recomputes (standalone mode); counted into num_preemptions
  // alongside the scheduler's own memory-pressure preemptions.
  int64_t crash_recomputes = 0;

  // Cluster-planned extractions (migration checkpoints, degraded drains,
  // hedge-race cancellations), sorted by absolute fire time. Locked requests
  // are parked like expired deadlines and extracted when their batch exits.
  std::vector<std::pair<double, size_t>> planned_queue;
  for (size_t i = 0; i < trace.size(); ++i) {
    if (trace.requests[i].planned_abort != PlannedAbort::kNone &&
        trace.requests[i].planned_abort_s > 0.0) {
      planned_queue.emplace_back(trace.requests[i].planned_abort_s, i);
    }
  }
  std::sort(planned_queue.begin(), planned_queue.end());
  size_t planned_cursor = 0;
  std::vector<std::pair<double, size_t>> planned_locked;

  // ---- Overload control (src/robustness) ----
  // All three mechanisms are off by default; this block allocates nothing and
  // the hot loop pays one branch when OverloadOptions is default-constructed.
  const OverloadOptions& overload = options_.overload;
  const bool overload_active = overload.enabled();
  std::unique_ptr<AdmissionPredictor> admission;
  if (overload.admission_ttft_slo_s > 0.0) {
    admission = std::make_unique<AdmissionPredictor>(
        &engine_->cost_model(), std::max<int64_t>(1, options_.scheduler.token_budget));
  }
  std::unique_ptr<CoDelQueue> codel;
  if (overload.queue_limit_s > 0.0) {
    codel = std::make_unique<CoDelQueue>(
        CoDelOptions{overload.queue_limit_s, overload.codel_interval_s});
    if (obs.active()) {
      codel->set_obs(&obs);
    }
  }
  std::unique_ptr<OverloadController> controller;
  if (overload.brownout) {
    controller = std::make_unique<OverloadController>(overload.controller);
    if (obs.active()) {
      controller->set_obs(&obs);
    }
  }
  // Windowed P99 TBT signal: samples accumulate per elapsed second of
  // simulation time; the controller reads the last completed window.
  constexpr double kTbtWindowS = 1.0;
  LogHistogram tbt_window;
  double tbt_window_start = 0.0;
  double tbt_window_p99 = 0.0;

  // Overload mitigations only touch "plain" trace requests. Planned-abort
  // carriers, parallel-sampling parents and migrated-in arrivals have
  // cluster-coordinated lifecycles (extraction plans, forks, adopted KV) that
  // a unilateral shed or truncation would corrupt; forked siblings
  // (slot >= trace.size()) are born running and never shed.
  auto overload_eligible = [&](size_t idx) {
    if (idx >= trace.size()) {
      return false;
    }
    const Request& r = trace.requests[idx];
    return r.planned_abort == PlannedAbort::kNone && r.num_samples <= 1 &&
           r.restored_generated <= 0;
  };

  // Permanent-shed bookkeeping shared by admission sheds, CoDel queue drops
  // and batch-lane brownout sheds. The request must already be out of the
  // scheduler (never enqueued, or just aborted); `what` is both the tracer
  // instant name and the metrics counter.
  auto mark_shed = [&](size_t idx, double t, const char* what, double retry_after_s,
                       double predicted_ttft_s) {
    RequestState* state = states[idx].get();
    state->set_phase(RequestPhase::kFailed);
    RequestMetrics& request_metrics = result.requests[idx];
    request_metrics.failed_s = t;
    request_metrics.failure = FailureKind::kShed;
    request_metrics.preemptions = state->preemptions();
    request_metrics.wasted_tokens =
        state->wasted_tokens() + state->prefill_done() + state->generated();
    if (tracer != nullptr) {
      if (predicted_ttft_s > 0.0) {
        tracer->Instant("overload", what, t,
                        {Arg("request", request_metrics.id),
                         Arg("retry_after_s", retry_after_s),
                         Arg("predicted_ttft_s", predicted_ttft_s)});
      } else {
        tracer->Instant("overload", what, t,
                        {Arg("request", request_metrics.id),
                         Arg("retry_after_s", retry_after_s)});
      }
    }
    span_transition(idx, kSpanClosed, t);
    if (metrics != nullptr) {
      metrics->AddCount(what, t);
      if (retry_after_s > 0.0) {
        metrics->Observe("retry_after_s", t, retry_after_s);
      }
      if (predicted_ttft_s > 0.0) {
        metrics->Observe("shed_predicted_ttft_s", t, predicted_ttft_s);
      }
    }
    if (flight != nullptr) {
      flight->RecordInstant("overload", what, t, fpid,
                            {{"request", static_cast<double>(request_metrics.id)},
                             {"retry_after_s", retry_after_s},
                             {"predicted_ttft_s", predicted_ttft_s}});
    }
    if (slo_monitor != nullptr) {
      slo_monitor->RecordOutcome(request_metrics.qos, /*good=*/false, t);
    }
  };

  auto deliver_arrivals = [&](double upto) {
    while (next_arrival < trace.size() &&
           trace.requests[next_arrival].arrival_time_s <= upto) {
      double arrival = trace.requests[next_arrival].arrival_time_s;
      obs.SetNow(arrival);
      RequestState* state = states[next_arrival].get();
      if (trace.requests[next_arrival].restored_generated > 0) {
        // Live-migrated arrival: adopt with the transferred KV, resuming the
        // decode with zero recompute. When the allocator cannot hold the
        // restored context, fall back to the recompute path — the request
        // queues like a preempted one and rebuilds its KV (counted as waste).
        if (scheduler->AdoptMigrated(state)) {
          span_transition(next_arrival, kSpanDecode, arrival);
          result.peak_kv_blocks = std::max(result.peak_kv_blocks, allocator->used_units());
          if (tracer != nullptr) {
            tracer->Instant("migration", "adopt", arrival,
                            {Arg("request", trace.requests[next_arrival].id)});
          }
          if (metrics != nullptr) {
            metrics->AddCount("migrations_in", arrival);
          }
        } else {
          state->ResetForRecompute();
          scheduler->Enqueue(state);
          span_transition(next_arrival, kSpanQueued, arrival);
          if (metrics != nullptr) {
            metrics->AddCount("migration_fallbacks", arrival);
          }
        }
      } else {
        bool shed = false;
        const char* shed_what = nullptr;
        double retry_after = 0.0;
        double predicted_ttft = 0.0;
        if (overload_active && overload_eligible(next_arrival)) {
          OverloadLevel level =
              controller != nullptr ? controller->level() : OverloadLevel::kNormal;
          if (level >= OverloadLevel::kShed && state->qos() == QosClass::kBatch) {
            // Shed rung: batch-lane arrivals are rejected outright so the
            // interactive lane keeps its SLO through the overload.
            shed = true;
            shed_what = "shed_brownout";
            ++result.num_shed_admission;
          } else if (admission != nullptr) {
            // SLO-aware admission: shed when the modeled TTFT cannot meet
            // min(admission SLO, the client's own deadline), with a modeled
            // retry-after for the client's backoff.
            double slo = overload.admission_ttft_slo_s;
            if (trace.requests[next_arrival].deadline_s > 0.0) {
              slo = std::min(slo, trace.requests[next_arrival].deadline_s);
            }
            int64_t backlog = scheduler->QueuedPrefillTokens();
            int64_t decodes = static_cast<int64_t>(scheduler->running().size());
            double predicted = admission->PredictTtftS(backlog, decodes, state->prompt_tokens());
            if (predicted > slo) {
              shed = true;
              shed_what = "shed_admission";
              predicted_ttft = predicted;
              retry_after =
                  admission->RetryAfterS(backlog, decodes, state->prompt_tokens(), slo);
              ++result.num_shed_admission;
            }
          }
        }
        if (shed) {
          mark_shed(next_arrival, arrival, shed_what, retry_after, predicted_ttft);
        } else {
          if (prefix_cache != nullptr && state->token_ids() != nullptr) {
            // Radix-cache lookup before enqueue: matched full blocks are
            // refcount-pinned so eviction cannot race the admission, and the
            // request's prefill starts at the matched boundary. Admission
            // later transplants the pinned chain into the block table.
            int64_t cached = prefix_cache->PinPrefix(state->id(), state->token_ids(),
                                                     state->prompt_tokens());
            if (cached > 0) {
              state->ApplyCachedPrefix(cached);
              result.requests[next_arrival].cached_prefill_tokens = cached;
              if (tracer != nullptr) {
                tracer->Instant("kv", "prefix_hit", arrival,
                                {Arg("request", state->id()), Arg("cached_tokens", cached)});
              }
              if (metrics != nullptr) {
                metrics->AddCount("prefix_hits", arrival);
                metrics->AddCount("cached_prefill_tokens", arrival,
                                  static_cast<double>(cached));
              }
              if (flight != nullptr) {
                flight->RecordInstant("kv", "prefix_hit", arrival, fpid,
                                      {{"request", static_cast<double>(state->id())},
                                       {"cached_tokens", static_cast<double>(cached)}});
              }
            }
          }
          if (controller != nullptr && controller->level() >= OverloadLevel::kBrownout &&
              state->qos() == QosClass::kBatch && overload.brownout_output_cap > 0 &&
              overload_eligible(next_arrival)) {
            // Brownout: batch-lane work is admitted but degraded (capped
            // generation) to free budget for the interactive lane.
            state->TruncateOutputAt(overload.brownout_output_cap);
            ++result.num_browned_out;
            if (metrics != nullptr) {
              metrics->AddCount("browned_out", arrival);
            }
          }
          scheduler->Enqueue(state);
          span_transition(next_arrival, kSpanQueued, arrival);
        }
      }
      if (metrics != nullptr) {
        metrics->AddCount("arrivals", arrival);
      }
      if (flight != nullptr) {
        flight->RecordInstant("request", "arrival", arrival, fpid,
                              {{"request", static_cast<double>(trace.requests[next_arrival].id)}});
      }
      ++next_arrival;
    }
  };

  auto deliver_completions = [&](double upto) {
    while (true) {
      // Earliest in-flight exit not after `upto`.
      size_t best = in_flight.size();
      for (size_t i = 0; i < in_flight.size(); ++i) {
        if (in_flight[i].exit_s <= upto &&
            (best == in_flight.size() || in_flight[i].exit_s < in_flight[best].exit_s)) {
          best = i;
        }
      }
      if (best == in_flight.size()) {
        return;
      }
      InFlightBatch done = std::move(in_flight[best]);
      in_flight.erase(in_flight.begin() + static_cast<long>(best));
      obs.SetNow(done.exit_s);

      // Token emissions happen at pipeline exit, before state advances.
      for (const auto& item : done.batch.items) {
        RequestMetrics& request_metrics = result.requests[static_cast<size_t>(item.request->slot())];
        bool emits = item.is_decode ||
                     item.request->prefill_done() + item.num_tokens ==
                         item.request->prefill_target();
        if (emits) {
          if (metrics != nullptr) {
            metrics->AddCount("output_tokens", done.exit_s);
            if (request_metrics.token_times_s.empty()) {
              metrics->Observe("ttft_s", done.exit_s, done.exit_s - request_metrics.arrival_s);
            } else {
              metrics->Observe("tbt_s", done.exit_s,
                               done.exit_s - request_metrics.token_times_s.back());
            }
          }
          if (slo_monitor != nullptr) {
            if (request_metrics.token_times_s.empty()) {
              slo_monitor->RecordLatency(SloSignal::kTtft, request_metrics.qos,
                                         done.exit_s - request_metrics.arrival_s, done.exit_s);
            } else {
              slo_monitor->RecordLatency(SloSignal::kTbt, request_metrics.qos,
                                         done.exit_s - request_metrics.token_times_s.back(),
                                         done.exit_s);
            }
          }
          if (controller != nullptr && !request_metrics.token_times_s.empty()) {
            // Feed the controller's windowed P99 TBT signal.
            tbt_window.Record(done.exit_s - request_metrics.token_times_s.back());
          }
          request_metrics.token_times_s.push_back(done.exit_s);
          ++result.total_output_tokens;
        }
        item.request->set_locked(false);
      }
      // Materialize parallel-sampling siblings for parents whose prefill just
      // completed — before OnBatchComplete, while the parent's block table is
      // guaranteed alive. Each sibling's first token is its fork-point draw,
      // emitted at this batch's exit.
      for (const auto& item : done.batch.items) {
        if (item.is_decode || item.request->prefill_done() + item.num_tokens !=
                                  item.request->prefill_target()) {
          continue;
        }
        auto plan = pending_forks.find(item.request);
        if (plan == pending_forks.end()) {
          continue;
        }
        double parent_first_scheduled = result.requests[static_cast<size_t>(item.request->slot())].first_scheduled_s;
        for (int64_t s = 0; s < plan->second; ++s) {
          int64_t child_id = next_fork_id++;
          RequestState child_state = RequestState::ForkedFrom(*item.request, child_id);
          child_state.AdvancePrefill(child_state.remaining_prefill());
          states.push_back(std::make_unique<RequestState>(child_state));
          RequestState* child = states.back().get();
          paged->Fork(item.request->id(), child_id);

          RequestMetrics child_metrics;
          child_metrics.id = child_id;
          child_metrics.qos = item.request->qos();
          child_metrics.arrival_s = item.request->arrival_time_s();
          child_metrics.first_scheduled_s = parent_first_scheduled;
          child_metrics.token_times_s.push_back(done.exit_s);
          ++result.total_output_tokens;
          if (metrics != nullptr) {
            metrics->AddCount("output_tokens", done.exit_s);
          }
          bool child_done = child->finished();
          if (child_done) {
            paged->Release(child_id);
            child->set_phase(RequestPhase::kFinished);
            child_metrics.completion_s = done.exit_s;
          } else {
            scheduler->AdoptRunning(child);
          }
          result.requests.push_back(std::move(child_metrics));
          child->set_slot(static_cast<int64_t>(result.requests.size() - 1));
          // Sibling spans begin at the fork point, already decoding (or
          // instantly closed for single-token samples).
          span_phase.push_back(kSpanNone);
          span_round.push_back(0);
          span_transition(result.requests.size() - 1, kSpanDecode, done.exit_s);
          if (child_done) {
            span_transition(result.requests.size() - 1, kSpanClosed, done.exit_s);
          }
        }
        pending_forks.erase(plan);
      }
      scheduler->ObserveIterationTime(done.batch, done.exit_s - done.start_s);
      scheduler->OnBatchComplete(done.batch);
      if (checker != nullptr) {
        checker->OnBatchApplied(done.batch, done.exit_s);
      }
      if (paged != nullptr) {
        // Time domain carries no KV values; discard CoW data-copy records.
        (void)paged->TakePendingCows();
      }
      // Forked siblings may have just taken block references.
      result.peak_kv_blocks = std::max(result.peak_kv_blocks, allocator->used_units());
      for (const auto& item : done.batch.items) {
        if (item.request->finished()) {
          size_t idx = static_cast<size_t>(item.request->slot());
          RequestMetrics& request_metrics = result.requests[idx];
          request_metrics.completion_s = done.exit_s;
          request_metrics.preemptions = item.request->preemptions();
          request_metrics.wasted_tokens = item.request->wasted_tokens();
          span_transition(idx, kSpanClosed, done.exit_s);
          if (metrics != nullptr) {
            metrics->AddCount("completions", done.exit_s);
          }
          if (flight != nullptr) {
            flight->RecordInstant("request", "completion", done.exit_s, fpid,
                                  {{"request", static_cast<double>(request_metrics.id)}});
          }
          if (slo_monitor != nullptr) {
            slo_monitor->RecordOutcome(request_metrics.qos, request_metrics.good(),
                                       done.exit_s);
          }
        }
      }
      if (options_.reuse_buffers) {
        scheduler->RecycleBatch(std::move(done.batch));
      }
    }
  };

  // Aborts every request whose client deadline expired by `upto`. A locked
  // request (inside an in-flight batch) cannot be aborted yet; it is parked
  // and retried after the batch exits. failed_s records the deadline itself,
  // not the (possibly later) moment the abort executes.
  auto abort_expired = [&](double upto) {
    auto expire = [&](double deadline_abs, size_t idx) -> bool {
      RequestState* state = states[idx].get();
      if (state->phase() == RequestPhase::kFinished ||
          state->phase() == RequestPhase::kFailed) {
        return true;  // Finished (or already failed) before the client gave up.
      }
      if (state->locked()) {
        return false;
      }
      obs.SetNow(deadline_abs);
      CHECK(scheduler->Abort(state));
      RequestMetrics& request_metrics = result.requests[idx];
      request_metrics.failed_s = deadline_abs;
      request_metrics.failure = FailureKind::kTimeout;
      request_metrics.preemptions = state->preemptions();
      // The abandoned attempt's entire progress is wasted service.
      request_metrics.wasted_tokens =
          state->wasted_tokens() + state->prefill_done() + state->generated();
      if (tracer != nullptr) {
        tracer->Instant("fault", "timeout", deadline_abs, {Arg("request", request_metrics.id)});
      }
      span_transition(idx, kSpanClosed, deadline_abs);
      if (metrics != nullptr) {
        metrics->AddCount("timeouts", deadline_abs);
      }
      if (flight != nullptr) {
        flight->RecordInstant("fault", "timeout", deadline_abs, fpid,
                              {{"request", static_cast<double>(request_metrics.id)}});
      }
      if (slo_monitor != nullptr) {
        slo_monitor->RecordOutcome(request_metrics.qos, /*good=*/false, deadline_abs);
      }
      return true;
    };
    std::vector<std::pair<double, size_t>> still_locked;
    for (const auto& [deadline_abs, idx] : expired_locked) {
      if (!expire(deadline_abs, idx)) {
        still_locked.emplace_back(deadline_abs, idx);
      }
    }
    expired_locked.swap(still_locked);
    while (deadline_cursor < deadline_queue.size() &&
           deadline_queue[deadline_cursor].first <= upto) {
      const auto& [deadline_abs, idx] = deadline_queue[deadline_cursor++];
      if (!expire(deadline_abs, idx)) {
        expired_locked.emplace_back(deadline_abs, idx);
      }
    }
  };

  // Fires cluster-planned extractions due by `upto`. Migration checkpoints
  // and drains only extract decoding requests — a queued or still-prefilling
  // request holds little worth moving and is covered by hedging instead —
  // while hedge-race cancellations fire in any phase. The attempt keeps its
  // emitted tokens; for a migration they are exactly the progress the
  // destination resumes from. failed_s records when the extraction actually
  // executed (deferred past in-flight batches and any token emitted
  // meanwhile), which is what the cluster uses as the KV transfer start.
  auto apply_planned = [&](double upto) {
    auto fire = [&](double abort_abs, size_t idx) -> bool {
      RequestState* state = states[idx].get();
      const Request& request = trace.requests[idx];
      if (idx >= next_arrival || state->phase() == RequestPhase::kFinished ||
          state->phase() == RequestPhase::kFailed) {
        return true;  // Never arrived, finished, or failed first: nothing to extract.
      }
      if (request.planned_abort != PlannedAbort::kHedgeCancel &&
          !(state->prefill_complete() && state->generated() > 0)) {
        return true;  // Not decoding: leave it in place.
      }
      if (state->locked()) {
        return false;
      }
      RequestMetrics& request_metrics = result.requests[idx];
      double t_fire = abort_abs;
      if (!request_metrics.token_times_s.empty()) {
        t_fire = std::max(t_fire, request_metrics.token_times_s.back());
      }
      obs.SetNow(t_fire);
      CHECK(scheduler->Abort(state));
      request_metrics.failed_s = t_fire;
      const char* what = "hedge_cancel";
      switch (request.planned_abort) {
        case PlannedAbort::kMigrateOut:
          request_metrics.failure = FailureKind::kMigrated;
          what = "migrate_out";
          break;
        case PlannedAbort::kDrain:
          request_metrics.failure = FailureKind::kDegradedDrain;
          what = "drain";
          break;
        default:
          request_metrics.failure = FailureKind::kHedgeCancelled;
          break;
      }
      request_metrics.preemptions = state->preemptions();
      // Everything a drained or hedge-cancelled attempt computed is redone
      // elsewhere; a migration checkpoint wastes nothing beyond recompute the
      // attempt already paid.
      request_metrics.wasted_tokens = state->wasted_tokens();
      if (request.planned_abort != PlannedAbort::kMigrateOut) {
        request_metrics.wasted_tokens += state->prefill_done() + state->generated();
      }
      if (tracer != nullptr) {
        tracer->Instant("migration", what, t_fire, {Arg("request", request_metrics.id)});
      }
      if (metrics != nullptr) {
        metrics->AddCount(what, t_fire);
      }
      span_transition(idx, kSpanClosed, t_fire);
      return true;
    };
    std::vector<std::pair<double, size_t>> still_locked;
    for (const auto& [abort_abs, idx] : planned_locked) {
      if (!fire(abort_abs, idx)) {
        still_locked.emplace_back(abort_abs, idx);
      }
    }
    planned_locked.swap(still_locked);
    while (planned_cursor < planned_queue.size() &&
           planned_queue[planned_cursor].first <= upto) {
      const auto& [abort_abs, idx] = planned_queue[planned_cursor++];
      if (!fire(abort_abs, idx)) {
        planned_locked.emplace_back(abort_abs, idx);
      }
    }
  };

  // Replica crash at outage.down_s: in-flight batches are discarded (their
  // tokens were never emitted), every admitted request loses its KV, and the
  // stages stay idle until outage.up_s.
  auto apply_crash = [&](const ReplicaOutage& outage) {
    obs.SetNow(outage.down_s);
    for (auto& f : in_flight) {
      for (const auto& item : f.batch.items) {
        item.request->set_locked(false);
      }
      if (checker != nullptr) {
        checker->OnBatchDiscarded(f.batch);
      }
    }
    in_flight.clear();
    if (options_.fail_interrupted_on_crash) {
      for (RequestState* state : scheduler->DrainAll()) {
        size_t idx = static_cast<size_t>(state->slot());
        RequestMetrics& request_metrics = result.requests[idx];
        request_metrics.failed_s = outage.down_s;
        request_metrics.failure = FailureKind::kReplicaCrash;
        request_metrics.preemptions = state->preemptions();
        request_metrics.wasted_tokens =
            state->wasted_tokens() + state->prefill_done() + state->generated();
        span_transition(idx, kSpanClosed, outage.down_s);
      }
    } else {
      // Standalone replica: running requests recompute after recovery; the
      // wait queue survives the crash untouched (it holds no KV).
      std::vector<RequestState*> running = scheduler->running();
      for (RequestState* state : running) {
        CHECK(scheduler->Abort(state));
        state->ResetForRecompute();
        scheduler->Enqueue(state);
        span_transition(static_cast<size_t>(state->slot()), kSpanQueued, outage.down_s);
        ++crash_recomputes;
      }
    }
    if (tracer != nullptr) {
      // A slice on the fault track spanning the outage, plus instants at the
      // crash and recovery edges.
      tracer->Complete("fault", "outage", outage.down_s, outage.duration(), num_stages,
                       {Arg("duration_s", outage.duration())});
      tracer->Instant("fault", "crash", outage.down_s);
      tracer->Instant("fault", "recovered", outage.up_s);
    }
    if (metrics != nullptr) {
      metrics->AddCount("outages", outage.down_s);
    }
    if (flight != nullptr) {
      // The trigger instant itself carries the reason; the recovery edge is
      // recorded so a post-crash dump shows the outage extent.
      flight->Trigger("replica_crash", outage.down_s, fpid);
      flight->RecordInstant("fault", "recovered", outage.up_s, fpid);
    }
    for (double& f : stage_free) {
      f = std::max(f, outage.up_s);
    }
    ++result.num_outages;
    result.downtime_s += outage.duration();
  };

  while (true) {
    double target = std::max(now, stage_free[0]);
    while (next_outage < options_.outages.size() &&
           options_.outages[next_outage].down_s <= target) {
      const ReplicaOutage outage = options_.outages[next_outage++];
      double t_down = std::max(now, outage.down_s);
      deliver_completions(t_down);
      deliver_arrivals(t_down);
      abort_expired(t_down);
      apply_planned(t_down);
      apply_crash(outage);
      target = std::max(target, stage_free[0]);
    }
    now = target;
    deliver_completions(now);
    deliver_arrivals(now);
    abort_expired(now);
    apply_planned(now);

    obs.SetNow(now);
    if (overload_active) {
      if (controller != nullptr) {
        // Roll the TBT window forward; an idle gap spanning several windows
        // resets the signal (no samples -> no pressure).
        if (now >= tbt_window_start + kTbtWindowS) {
          tbt_window_p99 = tbt_window.empty() ? 0.0 : tbt_window.Quantile(0.99);
          double windows = std::floor((now - tbt_window_start) / kTbtWindowS);
          tbt_window_start += windows * kTbtWindowS;
          if (windows > 1.0) {
            tbt_window_p99 = 0.0;
          }
          tbt_window = LogHistogram();
        }
        OverloadSignals signals;
        RequestState* oldest = scheduler->OldestQueued();
        signals.queue_delay_s = oldest != nullptr ? now - oldest->arrival_time_s() : 0.0;
        signals.p99_tbt_s = tbt_window_p99;
        signals.kv_utilization = allocator->Utilization();
        OverloadLevel prev = controller->level();
        OverloadLevel level = controller->Update(now, signals);
        // Every sample, not only on change: the scheduler's budget recovery
        // ramps down across repeated SetOverloadLevel calls.
        scheduler->SetOverloadLevel(level);
        if (level != prev) {
          if (tracer != nullptr) {
            tracer->Instant("overload", "overload_level", now,
                            {Arg("level", std::string(OverloadLevelName(level))),
                             Arg("queue_delay_s", signals.queue_delay_s),
                             Arg("p99_tbt_s", signals.p99_tbt_s),
                             Arg("kv_utilization", signals.kv_utilization)});
          }
          if (metrics != nullptr) {
            metrics->SetGauge("overload_level", now,
                              static_cast<double>(static_cast<int>(level)));
          }
          if (flight != nullptr) {
            flight->RecordCounter("overload", "overload_level", now, fpid,
                                  static_cast<double>(static_cast<int>(level)));
            if (level > prev && level >= OverloadLevel::kBrownout) {
              flight->Trigger(level >= OverloadLevel::kShed ? "overload_shed"
                                                            : "overload_brownout",
                              now, fpid);
            }
          }
        }
      }
      if (codel != nullptr) {
        // CoDel bounded queue: drop from the head while the controller says
        // the standing delay warrants it. An ineligible head (planned abort,
        // sampling parent) pauses dropping entirely — conservative, and those
        // requests are rare and cluster-managed.
        while (true) {
          RequestState* oldest = scheduler->OldestQueued();
          if (oldest == nullptr || oldest->slot() < 0 ||
              !overload_eligible(static_cast<size_t>(oldest->slot()))) {
            break;
          }
          if (!codel->ShouldDrop(now - oldest->arrival_time_s(), now)) {
            break;
          }
          size_t idx = static_cast<size_t>(oldest->slot());
          CHECK(scheduler->Abort(oldest));
          ++result.num_shed_queue;
          mark_shed(idx, now, "shed_queue", 0.0, 0.0);
        }
      }
    }
    ScheduledBatch batch = scheduler->Schedule();
    result.peak_kv_blocks = std::max(result.peak_kv_blocks, allocator->used_units());
    if (batch.empty()) {
      double next_event = kInfinity;
      if (next_arrival < trace.size()) {
        next_event = std::min(next_event, trace.requests[next_arrival].arrival_time_s);
      }
      for (const auto& f : in_flight) {
        next_event = std::min(next_event, f.exit_s);
      }
      bool pending_work = scheduler->HasWork() || !in_flight.empty() ||
                          next_arrival < trace.size();
      if (pending_work && next_outage < options_.outages.size()) {
        next_event = std::min(next_event, options_.outages[next_outage].down_s);
      }
      if (deadline_cursor < deadline_queue.size() && pending_work) {
        next_event = std::min(next_event, deadline_queue[deadline_cursor].first);
      }
      if (planned_cursor < planned_queue.size() && pending_work) {
        next_event = std::min(next_event, planned_queue[planned_cursor].first);
      }
      if (codel != nullptr && scheduler->queue_size() > 0) {
        // A standing queue with an empty batch (KV-blocked) still needs the
        // CoDel clock to advance so drops can relieve the pressure.
        RequestState* oldest = scheduler->OldestQueued();
        if (oldest != nullptr && oldest->slot() >= 0 &&
            overload_eligible(static_cast<size_t>(oldest->slot()))) {
          next_event = std::min(next_event, now + overload.codel_interval_s);
        }
      }
      if (next_event == kInfinity) {
        CHECK(!scheduler->HasWork())
            << scheduler->name() << " deadlocked: " << scheduler->queue_size()
            << " requests waiting, " << scheduler->running().size()
            << " running, nothing schedulable";
        break;  // All requests drained.
      }
      now = std::max(now, next_event);
      continue;
    }

    ++result.num_iterations;
    CHECK_LE(result.num_iterations, options_.max_iterations) << "runaway scheduling loop";
    if (checker != nullptr) {
      checker->OnBatchScheduled(batch, now);
    }

    double iter_flops = 0.0;
    double iter_bytes = 0.0;
    double stage_time;
    if (options_.reuse_buffers) {
      // Fast path: one pass over the batch shape yields the stage time and
      // the MFU/MBU accounting totals together (one KvSpan per sequence).
      stage_time = engine_->StageTimeAndTotals(batch, &iter_flops, &iter_bytes);
    } else {
      stage_time = engine_->StageTime(batch);
    }
    // Gray-failure degradation: an iteration whose batch starts inside a
    // slowdown episode runs slower on every pipeline stage; transient jitter
    // stretches isolated iterations on top. (Monotonic cursor — batch starts
    // never move backwards within a run.)
    while (slowdown_cursor < options_.slowdowns.size() &&
           options_.slowdowns[slowdown_cursor].end_s <= now) {
      ++slowdown_cursor;
    }
    double stretch = 1.0;
    if (slowdown_cursor < options_.slowdowns.size() &&
        now >= options_.slowdowns[slowdown_cursor].start_s) {
      stretch = options_.slowdowns[slowdown_cursor].factor;
    }
    stretch *= IterationJitterFactor(options_.jitter_seed, options_.trace_pid,
                                     result.num_iterations, options_.jitter_probability,
                                     options_.jitter_max_extra);
    if (stretch > 1.0) {
      stage_time *= stretch;
      ++result.degraded_iterations;
      if (metrics != nullptr) {
        metrics->AddCount("degraded_iterations", now);
      }
    }
    double start = now;
    double enter = start;
    std::string slice_name;
    if (tracer != nullptr) {
      slice_name = batch.Describe();
    }
    for (int s = 0; s < num_stages; ++s) {
      double stage_start = std::max(stage_free[static_cast<size_t>(s)], enter);
      result.stage_busy_s[static_cast<size_t>(s)] += stage_time;
      if (tracer != nullptr) {
        tracer->Complete("iteration", slice_name, stage_start, stage_time, s,
                         {Arg("tokens", batch.TotalTokens()), Arg("decodes", batch.NumDecodes()),
                          Arg("prefill_tokens", batch.NumPrefillTokens())});
      }
      if (flight != nullptr) {
        // Literal name (not batch.Describe()): the flight path must not
        // allocate in steady state; the shape args carry the batch identity.
        flight->RecordComplete("iteration", "iteration", stage_start, stage_time, fpid, s,
                               {{"tokens", static_cast<double>(batch.TotalTokens())},
                                {"decodes", static_cast<double>(batch.NumDecodes())},
                                {"prefill_tokens", static_cast<double>(batch.NumPrefillTokens())}});
      }
      enter = stage_start + stage_time;
      stage_free[static_cast<size_t>(s)] = enter;
    }
    double exit = enter;
    if (first_start < 0.0) {
      first_start = start;
    }
    last_exit = std::max(last_exit, exit);

    result.total_prefill_tokens += batch.NumPrefillTokens();
    if (options_.reuse_buffers) {
      // Totals were computed alongside the stage time above.
      result.total_flops += iter_flops;
      result.total_bytes += iter_bytes;
    } else {
      work_scratch = batch.ToBatchWork();
      result.total_flops += engine_->cost_model().BatchFlops(work_scratch);
      result.total_bytes += engine_->cost_model().BatchMemoryBytes(work_scratch);
    }
    if (options_.record_iterations) {
      IterationRecord record;
      record.start_s = start;
      record.stage_time_s = stage_time;
      record.exit_s = exit;
      record.description = batch.Describe();
      record.total_tokens = batch.TotalTokens();
      record.num_decodes = batch.NumDecodes();
      record.prefill_tokens = batch.NumPrefillTokens();
      result.iterations.push_back(std::move(record));
    }

    if (metrics != nullptr) {
      metrics->AddCount("iterations", start);
      if (batch.NumPrefillTokens() > 0) {
        metrics->AddCount("prefill_tokens", start,
                          static_cast<double>(batch.NumPrefillTokens()));
      }
    }
    for (const auto& item : batch.items) {
      item.request->set_locked(true);
      size_t idx = static_cast<size_t>(item.request->slot());
      RequestMetrics& request_metrics = result.requests[idx];
      if (request_metrics.first_scheduled_s < 0.0) {
        request_metrics.first_scheduled_s = start;
      }
      span_transition(idx, item.is_decode ? kSpanDecode : kSpanPrefill, start);
    }
    in_flight.push_back(InFlightBatch{std::move(batch), start, exit});
  }

  if (prefix_cache != nullptr) {
    const PrefixCachingAllocator::CacheStats& cache_stats = prefix_cache->stats();
    result.prefix_lookups = cache_stats.lookups;
    result.prefix_hits = cache_stats.hits;
    result.cached_prefill_tokens = cache_stats.cached_tokens;
    result.prefix_evictions = cache_stats.evictions;
    result.peak_cached_blocks = cache_stats.peak_cached_blocks;
    // Drain retained blocks before the end-of-run audit: with the cache
    // empty, a leak-free run must account for every block exactly like the
    // plain paged manager does.
    prefix_cache->DrainCache();
  }
  if (checker != nullptr) {
    checker->EndRun();
  }
  // Slowdown episodes that overlapped the run, clipped to the last exit so
  // degraded_s measures wall-clock the workload actually spent degraded.
  for (const SlowdownEpisode& episode : options_.slowdowns) {
    if (episode.start_s > last_exit) {
      break;
    }
    double clipped_end = std::min(episode.end_s, last_exit);
    ++result.num_slowdown_episodes;
    result.degraded_s += clipped_end - episode.start_s;
    if (tracer != nullptr) {
      tracer->Complete("fault", "slowdown", episode.start_s, clipped_end - episode.start_s,
                       num_stages, {Arg("factor", episode.factor)});
      tracer->Instant("fault", "degrade_begin", episode.start_s, {Arg("factor", episode.factor)});
      tracer->Instant("fault", "degrade_end", clipped_end);
    }
    if (metrics != nullptr) {
      metrics->AddCount("slowdown_episodes", episode.start_s);
    }
  }
  if (controller != nullptr) {
    result.overload_transitions = controller->transitions();
  }
  result.num_preemptions = scheduler->preemption_count() + crash_recomputes;
  result.peak_flops = engine_->cost_model().PeakFlops();
  result.peak_bandwidth = engine_->cost_model().PeakBandwidth();
  result.makespan_s = last_exit;
  result.active_window_s = first_start < 0.0 ? 0.0 : last_exit - first_start;
  result.total_kv_blocks = allocator->total_units();
  if (metrics != nullptr) {
    metrics->Finalize(result.makespan_s);
  }
  if (slo_monitor != nullptr) {
    // Close out the burn-rate windows so trailing badness still alerts.
    slo_monitor->AdvanceTo(result.makespan_s);
  }
  return result;
}

}  // namespace sarathi
