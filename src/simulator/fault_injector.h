// Deterministic fault injection for the simulators.
//
// Production clusters lose replicas and clients abandon slow requests; the
// paper's capacity numbers (Table 3) assume neither. This module generates
// the fault processes the failure-aware cluster simulator replays: per-replica
// crash/recovery schedules (exponential MTBF/MTTR) and per-request client
// timeouts. Every draw derives from an explicit seed plus the replica or
// request identity, so a fault schedule is a pure function of the options —
// two runs with the same seed see byte-identical failures regardless of call
// order.

#ifndef SRC_SIMULATOR_FAULT_INJECTOR_H_
#define SRC_SIMULATOR_FAULT_INJECTOR_H_

#include <cstdint>
#include <vector>

#include "src/workload/trace.h"

namespace sarathi {

// One replica crash/recovery cycle: the replica executes nothing in
// [down_s, up_s); all KV state is lost at down_s.
struct ReplicaOutage {
  double down_s = 0.0;
  double up_s = 0.0;

  double duration() const { return up_s - down_s; }
};

struct FaultOptions {
  uint64_t seed = 42;

  // Replica crash process: exponential time-between-failures with this mean,
  // per replica; <= 0 disables crashes entirely.
  double mtbf_s = 0.0;
  // Exponential repair time with this mean (floored at min_outage_s so an
  // outage is never instantaneous).
  double mttr_s = 30.0;
  double min_outage_s = 1.0;

  // Client-timeout process: each request independently carries a deadline
  // with this probability; <= 0 disables timeouts.
  double request_timeout_probability = 0.0;
  // Timeout drawn uniform in [0.5, 1.5) * request_timeout_s, relative to the
  // request's arrival. Requests not finished by then are aborted client-side.
  double request_timeout_s = 0.0;

  bool any_faults() const {
    return mtbf_s > 0.0 || (request_timeout_probability > 0.0 && request_timeout_s > 0.0);
  }
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultOptions& options);

  // The crash/recovery schedule of `replica_id` up to `horizon_s`: sorted,
  // non-overlapping outages. Deterministic in (seed, replica_id) alone.
  std::vector<ReplicaOutage> OutagesFor(int replica_id, double horizon_s) const;

  // Client timeout for `request`, in seconds after its arrival; 0 means the
  // client waits forever. Deterministic in (seed, request.id).
  double TimeoutFor(const Request& request) const;

  // Stamps TimeoutFor into Request::deadline_s for every request that does
  // not already carry a deadline.
  void ApplyTimeouts(Trace* trace) const;

  const FaultOptions& options() const { return options_; }

 private:
  FaultOptions options_;
};

}  // namespace sarathi

#endif  // SRC_SIMULATOR_FAULT_INJECTOR_H_
