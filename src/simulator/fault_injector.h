// Deterministic fault injection for the simulators.
//
// Production clusters lose replicas and clients abandon slow requests; the
// paper's capacity numbers (Table 3) assume neither. This module generates
// the fault processes the failure-aware cluster simulator replays: per-replica
// crash/recovery schedules (exponential MTBF/MTTR), per-replica gray-failure
// slowdown episodes (iteration-time multipliers with exponential onset and
// duration), per-iteration transient jitter, and per-request client timeouts.
// Every draw derives from an explicit seed plus the replica or request
// identity, so a fault schedule is a pure function of the options — two runs
// with the same seed see byte-identical failures regardless of call order.

#ifndef SRC_SIMULATOR_FAULT_INJECTOR_H_
#define SRC_SIMULATOR_FAULT_INJECTOR_H_

#include <cstdint>
#include <vector>

#include "src/workload/trace.h"

namespace sarathi {

// One replica crash/recovery cycle: the replica executes nothing in
// [down_s, up_s); all KV state is lost at down_s.
struct ReplicaOutage {
  double down_s = 0.0;
  double up_s = 0.0;

  double duration() const { return up_s - down_s; }
};

// How a correlated domain fault manifests for every replica in the domain.
enum class DomainFaultKind {
  // Power/host loss: every member crashes (KV lost, execution stops), exactly
  // as an independent ReplicaOutage would.
  kCrash,
  // Router<->domain network partition: members keep executing and keep all
  // state, but are unreachable from the router for the fault's duration.
  kPartition,
};

// One correlated failure-domain event: every replica assigned to the domain
// is affected in [down_s, up_s).
struct DomainFault {
  double down_s = 0.0;
  double up_s = 0.0;
  DomainFaultKind kind = DomainFaultKind::kCrash;

  double duration() const { return up_s - down_s; }
};

// One gray-failure episode: the replica stays up and keeps all state, but
// every iteration started in [start_s, end_s) runs `factor` times slower
// (thermal throttling, interconnect congestion, memory pressure, ...).
struct SlowdownEpisode {
  double start_s = 0.0;
  double end_s = 0.0;
  double factor = 1.0;

  double duration() const { return end_s - start_s; }
};

struct FaultOptions {
  uint64_t seed = 42;

  // Replica crash process: exponential time-between-failures with this mean,
  // per replica; <= 0 disables crashes entirely.
  double mtbf_s = 0.0;
  // Exponential repair time with this mean (floored at min_outage_s so an
  // outage is never instantaneous).
  double mttr_s = 30.0;
  double min_outage_s = 1.0;

  // Degradation (gray-failure) process: exponential healthy time between
  // slowdown onsets with this mean, per replica; <= 0 disables slowdowns.
  double degrade_mtbf_s = 0.0;
  // Exponential episode duration with this mean (floored at min_degrade_s).
  double degrade_mttr_s = 20.0;
  double min_degrade_s = 1.0;
  // Each episode's iteration-time multiplier is drawn uniform in
  // [degrade_min_factor, degrade_max_factor); values are clamped to >= 1.
  double degrade_min_factor = 1.5;
  double degrade_max_factor = 4.0;

  // Transient jitter: each iteration is independently stretched, with this
  // probability, by a factor uniform in (1, 1 + jitter_max_extra]. Models
  // one-off stalls too short for a prober to act on; both must be > 0.
  double jitter_probability = 0.0;
  double jitter_max_extra = 0.0;

  // Correlated failure domains: replicas are grouped into `num_domains`
  // contiguous, balanced racks/zones (replica r belongs to domain
  // r % num_domains when num_domains <= num_replicas; the cluster owns the
  // actual assignment). Each domain independently draws a fault process with
  // exponential time-between-faults `domain_mtbf_s` (<= 0 disables) and
  // exponential repair `domain_mttr_s` floored at `min_domain_outage_s`.
  // Each fault is a partition with probability `domain_partition_fraction`,
  // a whole-domain crash otherwise.
  int num_domains = 0;
  double domain_mtbf_s = 0.0;
  double domain_mttr_s = 30.0;
  double min_domain_outage_s = 1.0;
  double domain_partition_fraction = 0.0;

  // Client-timeout process: each request independently carries a deadline
  // with this probability; <= 0 disables timeouts.
  double request_timeout_probability = 0.0;
  // Timeout drawn uniform in [0.5, 1.5) * request_timeout_s, relative to the
  // request's arrival. Requests not finished by then are aborted client-side.
  double request_timeout_s = 0.0;

  bool any_degradation() const {
    return degrade_mtbf_s > 0.0 || (jitter_probability > 0.0 && jitter_max_extra > 0.0);
  }

  bool any_domain_faults() const { return num_domains > 0 && domain_mtbf_s > 0.0; }

  bool any_faults() const {
    return mtbf_s > 0.0 || any_degradation() || any_domain_faults() ||
           (request_timeout_probability > 0.0 && request_timeout_s > 0.0);
  }
};

class FaultInjector {
 public:
  // Pathological option values are clamped into their documented domains
  // instead of crashing (negative MTTR, zero outage floor, out-of-range
  // probabilities, inverted factor range); see the constructor for the rules.
  explicit FaultInjector(const FaultOptions& options);

  // The crash/recovery schedule of `replica_id` up to `horizon_s`: sorted,
  // non-overlapping outages. Deterministic in (seed, replica_id) alone.
  // Every outage starts before the horizon; the last one may end after it.
  std::vector<ReplicaOutage> OutagesFor(int replica_id, double horizon_s) const;

  // The correlated fault schedule of failure domain `domain_id` up to
  // `horizon_s`: sorted, non-overlapping faults, each tagged crash or
  // partition. Deterministic in (seed, domain_id) alone, from a stream
  // independent of the per-replica processes — adding domains never perturbs
  // existing per-replica schedules. Every fault starts before the horizon;
  // the last one may end after it.
  std::vector<DomainFault> DomainFaultsFor(int domain_id, double horizon_s) const;

  // The gray-failure schedule of `replica_id` up to `horizon_s`: sorted,
  // non-overlapping slowdown episodes. Deterministic in (seed, replica_id);
  // drawn from a stream independent of OutagesFor. Every episode starts
  // before the horizon; the last one may end after it.
  std::vector<SlowdownEpisode> SlowdownsFor(int replica_id, double horizon_s) const;

  // Client timeout for `request`, in seconds after its arrival; 0 means the
  // client waits forever. Deterministic in (seed, request.id) — works with or
  // without a crash/slowdown process configured.
  double TimeoutFor(const Request& request) const;

  // Stamps TimeoutFor into Request::deadline_s for every request that does
  // not already carry a deadline.
  void ApplyTimeouts(Trace* trace) const;

  const FaultOptions& options() const { return options_; }

 private:
  FaultOptions options_;
};

// Per-iteration transient jitter multiplier: 1.0 for most iterations; with
// `probability`, the iteration is stretched by a factor uniform in
// (1, 1 + max_extra]. A pure function of (seed, replica_id, iteration) — no
// generator state, so re-simulating a replica on a grown sub-trace replays
// identical jitter for identical iteration indices.
double IterationJitterFactor(uint64_t seed, int replica_id, int64_t iteration,
                             double probability, double max_extra);

}  // namespace sarathi

#endif  // SRC_SIMULATOR_FAULT_INJECTOR_H_
