// Discrete-event simulator of one model replica.
//
// Replays a request trace against a scheduling policy, with execution times
// supplied by an ExecutionEngine. Pipeline parallelism is modeled at
// micro-batch granularity: a batch enters stage s when both stage s-1 has
// emitted it and stage s has finished its previous batch — the gaps are
// exactly the paper's pipeline bubbles PB1-PB3 (§3.3). Requests inside an
// in-flight batch are locked, so the scheduler naturally keeps up to PP
// disjoint micro-batches in flight (Orca-style pipelined iteration-level
// scheduling).

#ifndef SRC_SIMULATOR_REPLICA_SIMULATOR_H_
#define SRC_SIMULATOR_REPLICA_SIMULATOR_H_

#include <memory>
#include <vector>

#include "src/engine/execution_engine.h"
#include "src/obs/obs_hooks.h"
#include "src/obs/slo_monitor.h"
#include "src/perfmodel/iteration_cost.h"
#include "src/robustness/overload_controller.h"
#include "src/scheduler/scheduler.h"
#include "src/scheduler/scheduler_factory.h"
#include "src/simulator/fault_injector.h"
#include "src/simulator/metrics.h"
#include "src/workload/trace.h"

namespace sarathi {

class InvariantChecker;

struct SimulatorOptions {
  ModelSpec model;
  ClusterSpec cluster;
  ParallelConfig parallel;
  SchedulerConfig scheduler;

  // Optional pre-built cost model to reuse (e.g. a cluster simulator sharing
  // one memo cache across its serial replica re-simulations). Must match
  // model/cluster/parallel above. Null: the simulator builds its own. Never
  // share one model across concurrently running simulators — the memo caches
  // are not thread-safe.
  std::shared_ptr<IterationCostModel> cost_model;

  // Fast-path switch for A/B perf measurement (bench_perf_selfcheck): when
  // false, scratch-buffer reuse and batch recycling are disabled and every
  // iteration allocates as the pre-fast-path code did. Results are identical
  // either way.
  bool reuse_buffers = true;

  // KV paging parameters.
  int64_t block_size = 16;
  double watermark = 0.01;

  // KV allocator selection. kPolicyDefault picks the memory manager each
  // policy assumes (paged for Sarathi/vLLM/FastServe/VTC, max-length
  // reservations for Orca/FT); the explicit kinds exist for differential
  // testing of every policy on both managers. kPagedCached layers the radix
  // prefix cache over the paged manager: arrivals carrying token_ids are
  // looked up before enqueue and matched full blocks are reused with zero
  // recompute. Models with a sliding window silently downgrade kPagedCached
  // to kPaged (window clamping recycles blocks in place, which breaks the
  // cache's position->block identity).
  AllocatorKind allocator_kind = AllocatorKind::kPolicyDefault;
  // Overrides for the allocator's capacity and per-sequence reservation
  // size; <= 0 derives them from the cost model (MaxKvTokens()) and the
  // model spec (max_seq_len). The fuzzer shrinks both to force preemption
  // and admission pressure that a full-size cache would never exhibit.
  int64_t kv_capacity_tokens = 0;
  int64_t kv_max_seq_len = 0;

  // Keep per-iteration records (schedule traces / bubble plots).
  bool record_iterations = false;

  // Safety valve against scheduling livelock.
  int64_t max_iterations = 20000000;

  // Fault injection: sorted, non-overlapping crash/recovery windows for this
  // replica (FaultInjector::OutagesFor). At down_s every in-flight batch is
  // discarded (no tokens emitted), every admitted request loses its KV
  // blocks, and nothing executes until up_s. Outages after the last event of
  // the run are ignored.
  std::vector<ReplicaOutage> outages;
  // What happens to interrupted requests at a crash:
  //  false — standalone replica: running requests re-enter the wait queue via
  //          the preemption-recompute path and complete after recovery.
  //  true  — cluster member: every waiting or running request is marked
  //          failed (FailureKind::kReplicaCrash) so the router can re-route
  //          it to a surviving replica.
  bool fail_interrupted_on_crash = false;

  // Gray-failure degradation: sorted, non-overlapping slowdown episodes for
  // this replica (FaultInjector::SlowdownsFor). An iteration whose batch
  // starts inside an episode runs factor times slower on every pipeline
  // stage; the replica stays up and loses no state.
  std::vector<SlowdownEpisode> slowdowns;
  // Transient per-iteration jitter (FaultOptions::jitter_*): with
  // jitter_probability an iteration is independently stretched by a factor
  // uniform in (1, 1 + jitter_max_extra]. Deterministic in
  // (jitter_seed, trace_pid, iteration index).
  double jitter_probability = 0.0;
  double jitter_max_extra = 0.0;
  uint64_t jitter_seed = 0;

  // Observability (both optional, may be null). The tracer records request
  // lifecycle spans, per-stage iteration slices, scheduler/KV instants, and
  // outage events; the registry accumulates windowed time series (queue
  // depth, KV blocks in use, tokens/s, per-window TBT). `trace_pid` is the
  // process id stamped on trace events — the replica index in a cluster run,
  // so Perfetto renders each replica as its own process.
  Tracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;
  int trace_pid = 0;

  // Always-on flight recorder (may be null). Unlike the tracer it records
  // without allocating, so it stays enabled in steady state; the simulator
  // feeds it arrivals, per-stage iteration slices, sheds/timeouts,
  // completions, overload-ladder moves and crashes, and fires Trigger() on
  // an overload escalation to brownout/shed and on a replica crash.
  FlightRecorder* flight = nullptr;

  // Live SLO burn-rate monitor (may be null). The simulator feeds TTFT/TBT
  // samples at token emission and request outcomes at completion/timeout/
  // shed; alert emission goes through the sinks the caller bound with
  // SloMonitor::Bind.
  SloMonitor* slo = nullptr;

  // Overload control (src/robustness): SLO-aware admission, CoDel bounded
  // queue, and the brownout ladder. All knobs default off; a default
  // OverloadOptions leaves every run byte-identical to pre-overload behavior.
  // Mitigations only touch "plain" requests — planned-abort carriers,
  // parallel-sampling parents and migrated-in arrivals keep their
  // cluster-coordinated lifecycles.
  OverloadOptions overload;

  // Invariant checker (src/verify), may be null. When set, the simulator
  // binds it to the run (BeginRun/EndRun), threads it through ObsHooks, and
  // reports every scheduled/applied/crash-discarded batch. Violations are
  // fatal or accumulated per the checker's own options.
  InvariantChecker* checker = nullptr;
};

class ReplicaSimulator {
 public:
  explicit ReplicaSimulator(const SimulatorOptions& options);

  // Simulates the trace to completion and returns the collected metrics.
  SimResult Run(const Trace& trace);

  // The cost model the engine uses (for SLO derivation and reporting).
  const IterationCostModel& cost_model() const { return engine_->cost_model(); }

 private:
  SimulatorOptions options_;
  std::unique_ptr<SimulatedEngine> engine_;
};

}  // namespace sarathi

#endif  // SRC_SIMULATOR_REPLICA_SIMULATOR_H_
