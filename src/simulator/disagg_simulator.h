// Disaggregated prefill/decode serving (Splitwise, DistServe, TetriInfer —
// the paper's §6 "third category").
//
// Prompts are processed at full speed on a dedicated prefill replica; the
// request's KV cache then migrates over an interconnect to a decode replica
// that runs pure decode batches. Interference between phases disappears by
// construction — the questions the paper raises are the costs: KV migration
// needs bandwidth, prefill-replica memory sits underused, and the GPU split
// halves each pool's capacity for the phase it doesn't serve. This simulator
// makes the §6 comparison the paper left as future work quantitative.
//
// Model simplifications (documented in DESIGN.md): one replica per pool
// (each possibly tensor-parallel; no pipeline parallelism inside a pool) and
// a single migration link that serializes transfers.

#ifndef SRC_SIMULATOR_DISAGG_SIMULATOR_H_
#define SRC_SIMULATOR_DISAGG_SIMULATOR_H_

#include <memory>

#include "src/perfmodel/iteration_cost.h"
#include "src/simulator/metrics.h"
#include "src/workload/trace.h"

namespace sarathi {

struct DisaggOptions {
  ModelSpec model;
  ClusterSpec cluster;
  // Parallelism of each pool's single replica.
  ParallelConfig prefill_parallel;
  ParallelConfig decode_parallel;

  // Prefill batching: whole prompts, coalesced up to this many tokens.
  int64_t max_prefill_tokens = 16384;
  int64_t max_prefill_batch = 8;
  // Decode batching cap.
  int64_t max_batch_size = 128;

  // KV migration link (per-direction bytes/s + latency). Splitwise-class
  // deployments use InfiniBand (~25 GB/s); intra-node NVLink designs are
  // faster.
  double migration_bandwidth = 25e9;
  double migration_latency_s = 10e-6;

  // Decode-pool paging.
  int64_t block_size = 16;
  double watermark = 0.01;
};

class DisaggSimulator {
 public:
  explicit DisaggSimulator(const DisaggOptions& options);

  // Serves the trace to completion. In the returned SimResult,
  // stage_busy_s[0] is the prefill replica's busy time and stage_busy_s[1]
  // the decode replica's, so BubbleFraction() reads as pool idleness.
  SimResult Run(const Trace& trace);

  const IterationCostModel& prefill_model() const { return *prefill_model_; }
  const IterationCostModel& decode_model() const { return *decode_model_; }

 private:
  DisaggOptions options_;
  std::unique_ptr<IterationCostModel> prefill_model_;
  std::unique_ptr<IterationCostModel> decode_model_;
};

}  // namespace sarathi

#endif  // SRC_SIMULATOR_DISAGG_SIMULATOR_H_
