#include "src/simulator/cluster_simulator.h"

#include <algorithm>

#include "src/common/logging.h"

namespace sarathi {

std::string_view RoutingPolicyName(RoutingPolicy policy) {
  switch (policy) {
    case RoutingPolicy::kRoundRobin:
      return "round_robin";
    case RoutingPolicy::kLeastOutstandingWork:
      return "least_outstanding_work";
  }
  return "unknown";
}

ClusterSimulator::ClusterSimulator(const ClusterOptions& options) : options_(options) {
  CHECK_GE(options_.num_replicas, 1);
  if (options_.estimated_tokens_per_s > 0.0) {
    service_rate_ = options_.estimated_tokens_per_s;
  } else {
    // Default estimate: tokens a budget-sized hybrid iteration retires per
    // second, from the replica's cost model, derated for decode-phase
    // inefficiency (a request's decode tokens drain far slower than its
    // prefill tokens). Overestimating the drain would zero every replica's
    // outstanding count and blind the balancer.
    IterationCostModel cost_model(options_.replica.model, options_.replica.cluster,
                                  options_.replica.parallel);
    BatchWork probe;
    probe.sequences.push_back(SequenceWork::PrefillChunk(1024, 512));
    double iteration = cost_model.IterationCost(probe).Total();
    service_rate_ = 0.4 * 512.0 / std::max(iteration, 1e-9);
  }
}

int ClusterSimulator::Route(const Request& request, double now,
                            std::vector<double>* outstanding_tokens,
                            std::vector<double>* last_update, int* rr_cursor) const {
  if (options_.routing == RoutingPolicy::kRoundRobin) {
    int pick = *rr_cursor;
    *rr_cursor = (*rr_cursor + 1) % options_.num_replicas;
    return pick;
  }
  // Age each replica's outstanding estimate by the service it performed
  // since its last assignment, then pick the least loaded. The scan starts at
  // a rotating offset so drained (all-zero) states degrade to round-robin
  // instead of pinning replica 0.
  for (int i = 0; i < options_.num_replicas; ++i) {
    double drained = ((*last_update)[static_cast<size_t>(i)] < now)
                         ? (now - (*last_update)[static_cast<size_t>(i)]) * service_rate_
                         : 0.0;
    auto& tokens = (*outstanding_tokens)[static_cast<size_t>(i)];
    tokens = std::max(0.0, tokens - drained);
    (*last_update)[static_cast<size_t>(i)] = now;
  }
  int best = -1;
  for (int k = 0; k < options_.num_replicas; ++k) {
    int i = (*rr_cursor + k) % options_.num_replicas;
    if (best < 0 || (*outstanding_tokens)[static_cast<size_t>(i)] <
                        (*outstanding_tokens)[static_cast<size_t>(best)]) {
      best = i;
    }
  }
  *rr_cursor = (*rr_cursor + 1) % options_.num_replicas;
  (*outstanding_tokens)[static_cast<size_t>(best)] +=
      static_cast<double>(request.total_tokens());
  return best;
}

SimResult ClusterSimulator::Run(const Trace& trace) {
  std::vector<Trace> sub_traces(static_cast<size_t>(options_.num_replicas));
  for (auto& sub : sub_traces) {
    sub.name = trace.name;
  }
  assignment_.assign(trace.size(), 0);

  std::vector<double> outstanding(static_cast<size_t>(options_.num_replicas), 0.0);
  std::vector<double> last_update(static_cast<size_t>(options_.num_replicas), 0.0);
  int rr_cursor = 0;
  // Remember where each request lands so merged metrics keep trace order.
  std::vector<std::pair<int, size_t>> placement(trace.size());
  for (size_t i = 0; i < trace.size(); ++i) {
    const Request& request = trace.requests[i];
    int replica =
        Route(request, request.arrival_time_s, &outstanding, &last_update, &rr_cursor);
    assignment_[i] = replica;
    placement[i] = {replica, sub_traces[static_cast<size_t>(replica)].requests.size()};
    sub_traces[static_cast<size_t>(replica)].requests.push_back(request);
  }

  std::vector<SimResult> results;
  results.reserve(static_cast<size_t>(options_.num_replicas));
  for (int i = 0; i < options_.num_replicas; ++i) {
    ReplicaSimulator simulator(options_.replica);
    results.push_back(simulator.Run(sub_traces[static_cast<size_t>(i)]));
  }

  SimResult merged;
  merged.scheduler_name = results[0].scheduler_name + " x" +
                          std::to_string(options_.num_replicas) + " (" +
                          std::string(RoutingPolicyName(options_.routing)) + ")";
  merged.requests.resize(trace.size());
  for (size_t i = 0; i < trace.size(); ++i) {
    const auto& [replica, slot] = placement[i];
    merged.requests[i] = results[static_cast<size_t>(replica)].requests[slot];
  }
  for (const SimResult& r : results) {
    merged.num_iterations += r.num_iterations;
    merged.num_preemptions += r.num_preemptions;
    merged.makespan_s = std::max(merged.makespan_s, r.makespan_s);
    merged.active_window_s = std::max(merged.active_window_s, r.active_window_s);
    merged.total_output_tokens += r.total_output_tokens;
    merged.total_prefill_tokens += r.total_prefill_tokens;
    merged.total_flops += r.total_flops;
    merged.peak_flops += r.peak_flops;
    merged.total_bytes += r.total_bytes;
    merged.peak_bandwidth += r.peak_bandwidth;
    merged.stage_busy_s.insert(merged.stage_busy_s.end(), r.stage_busy_s.begin(),
                               r.stage_busy_s.end());
  }
  return merged;
}

}  // namespace sarathi
