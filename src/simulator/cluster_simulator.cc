#include "src/simulator/cluster_simulator.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <set>
#include <utility>

#include "src/common/logging.h"

namespace sarathi {
namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();
constexpr size_t kNoSlot = static_cast<size_t>(-1);

// Inserts `request` keeping the sub-trace sorted by arrival time; among equal
// arrivals the new request goes last (stable).
void InsertSorted(Trace* trace, const Request& request) {
  auto it = std::upper_bound(trace->requests.begin(), trace->requests.end(),
                             request.arrival_time_s,
                             [](double t, const Request& r) { return t < r.arrival_time_s; });
  trace->requests.insert(it, request);
}

// Metrics slot of the service attempt with this id and attempt arrival time
// (an id can appear several times on one replica if retries return to it).
size_t FindAttemptSlot(const SimResult& result, int64_t id, double arrival_s) {
  for (size_t i = 0; i < result.requests.size(); ++i) {
    if (result.requests[i].id == id && result.requests[i].arrival_s == arrival_s) {
      return i;
    }
  }
  return kNoSlot;
}

}  // namespace

std::string_view RoutingPolicyName(RoutingPolicy policy) {
  switch (policy) {
    case RoutingPolicy::kRoundRobin:
      return "round_robin";
    case RoutingPolicy::kLeastOutstandingWork:
      return "least_outstanding_work";
  }
  return "unknown";
}

ClusterSimulator::ClusterSimulator(const ClusterOptions& options) : options_(options) {
  CHECK_GE(options_.num_replicas, 1);
  CHECK_GE(options_.max_retries, 0);
  CHECK_GT(options_.retry_backoff_s, 0.0);
  if (options_.estimated_tokens_per_s > 0.0) {
    service_rate_ = options_.estimated_tokens_per_s;
  } else {
    // Default estimate: tokens a budget-sized hybrid iteration retires per
    // second, from the replica's cost model, derated for decode-phase
    // inefficiency (a request's decode tokens drain far slower than its
    // prefill tokens). Overestimating the drain would zero every replica's
    // outstanding count and blind the balancer.
    IterationCostModel cost_model(options_.replica.model, options_.replica.cluster,
                                  options_.replica.parallel);
    BatchWork probe;
    probe.sequences.push_back(SequenceWork::PrefillChunk(1024, 512));
    double iteration = cost_model.IterationCost(probe).Total();
    service_rate_ = 0.4 * 512.0 / std::max(iteration, 1e-9);
  }
}

bool ClusterSimulator::DownAt(int replica, double t) const {
  for (const ReplicaOutage& outage : outage_schedules_[static_cast<size_t>(replica)]) {
    if (t < outage.down_s) {
      return false;
    }
    if (t < outage.up_s) {
      return true;
    }
  }
  return false;
}

double ClusterSimulator::NextHealthyTime(double t) const {
  double earliest_up = kInfinity;
  for (int r = 0; r < options_.num_replicas; ++r) {
    if (!DownAt(r, t)) {
      return t;
    }
    for (const ReplicaOutage& outage : outage_schedules_[static_cast<size_t>(r)]) {
      if (t >= outage.down_s && t < outage.up_s) {
        earliest_up = std::min(earliest_up, outage.up_s);
        break;
      }
    }
  }
  return earliest_up;
}

void ClusterSimulator::AgeOutstanding(RouterState* state, double now) const {
  for (int i = 0; i < options_.num_replicas; ++i) {
    auto& last = state->last_update[static_cast<size_t>(i)];
    if (last >= now) {
      continue;  // Out-of-order retry timestamps never rewind the estimate.
    }
    auto& tokens = state->outstanding_tokens[static_cast<size_t>(i)];
    tokens = std::max(0.0, tokens - (now - last) * service_rate_);
    last = now;
  }
}

int ClusterSimulator::Route(int64_t tokens, double now, int exclude,
                            RouterState* state) const {
  const int n = options_.num_replicas;
  int num_up = 0;
  for (int r = 0; r < n; ++r) {
    num_up += DownAt(r, now) ? 0 : 1;
  }
  if (num_up == 0) {
    return -1;
  }
  // Avoid the replica that just failed the request — unless it is the only
  // one standing.
  bool avoid = exclude >= 0 && !(num_up == 1 && !DownAt(exclude, now));
  auto allowed = [&](int r) { return !DownAt(r, now) && !(avoid && r == exclude); };

  int pick = -1;
  if (options_.routing == RoutingPolicy::kRoundRobin) {
    for (int k = 0; k < n; ++k) {
      int r = (state->rr_cursor + k) % n;
      if (allowed(r)) {
        pick = r;
        break;
      }
    }
  } else {
    // Age each replica's outstanding estimate, then pick the least loaded.
    // The scan starts at a rotating offset so drained (all-zero) states
    // degrade to round-robin instead of pinning replica 0.
    AgeOutstanding(state, now);
    for (int k = 0; k < n; ++k) {
      int r = (state->rr_cursor + k) % n;
      if (!allowed(r)) {
        continue;
      }
      if (pick < 0 || state->outstanding_tokens[static_cast<size_t>(r)] <
                          state->outstanding_tokens[static_cast<size_t>(pick)]) {
        pick = r;
      }
    }
  }
  state->rr_cursor = (state->rr_cursor + 1) % n;
  CHECK_GE(pick, 0);
  state->outstanding_tokens[static_cast<size_t>(pick)] += static_cast<double>(tokens);
  return pick;
}

SimResult ClusterSimulator::Run(const Trace& trace) {
  const int n = options_.num_replicas;
  const size_t num_requests = trace.size();

  FaultInjector injector(options_.faults);
  Trace stamped = trace;
  injector.ApplyTimeouts(&stamped);

  double last_arrival = 0.0;
  int64_t trace_tokens = 0;
  for (const Request& r : stamped.requests) {
    last_arrival = std::max(last_arrival, r.arrival_time_s);
    trace_tokens += r.total_tokens();
  }
  double horizon = options_.fault_horizon_s;
  if (horizon <= 0.0) {
    // Cover the arrival span plus a generous multiple of the estimated drain.
    horizon = last_arrival + 60.0 +
              4.0 * static_cast<double>(trace_tokens) / (service_rate_ * n);
  }
  outage_schedules_.assign(static_cast<size_t>(n), {});
  for (int r = 0; r < n; ++r) {
    outage_schedules_[static_cast<size_t>(r)] = injector.OutagesFor(r, horizon);
  }

  // ---- Observability ----
  // Retry rounds re-simulate replicas from scratch; a shared tracer would
  // accumulate duplicate events from the discarded rounds. Instead every
  // simulate() call starts that replica on a fresh tracer/registry (replacing
  // the previous round's), and the final per-replica state merges into the
  // caller's sinks at the end of Run. Router-level events (sheds, retries)
  // are recorded directly into the destination tracer as process `n`.
  Tracer* dest_tracer =
      options_.replica.tracer != nullptr && options_.replica.tracer->enabled()
          ? options_.replica.tracer
          : nullptr;
  MetricsRegistry* dest_metrics = options_.replica.metrics;
  std::vector<std::unique_ptr<Tracer>> replica_tracers(static_cast<size_t>(n));
  std::vector<std::unique_ptr<MetricsRegistry>> replica_metrics(static_cast<size_t>(n));
  if (dest_tracer != nullptr) {
    dest_tracer->set_default_pid(n);
    dest_tracer->SetProcessName(n, "router");
  }

  // ---- Initial routing (health-aware, with admission control) ----
  std::vector<Trace> sub(static_cast<size_t>(n));
  for (Trace& s : sub) {
    s.name = trace.name;
  }
  assignment_.assign(num_requests, -1);
  // Service-attempt history per trace request: (replica, attempt arrival).
  struct Attempt {
    int replica;
    double arrival_s;
  };
  std::vector<std::vector<Attempt>> chains(num_requests);
  std::vector<bool> shed(num_requests, false);
  // Router-decided final failures: a retry whose remaining deadline had
  // already expired is recorded as a timeout, not retried.
  std::vector<std::pair<FailureKind, double>> failure_override(
      num_requests, {FailureKind::kNone, -1.0});

  RouterState router;
  router.outstanding_tokens.assign(static_cast<size_t>(n), 0.0);
  router.last_update.assign(static_cast<size_t>(n), 0.0);

  for (size_t i = 0; i < num_requests; ++i) {
    const Request& request = stamped.requests[i];
    double t = request.arrival_time_s;
    bool any_up = false;
    for (int r = 0; r < n; ++r) {
      any_up |= !DownAt(r, t);
    }
    auto record_shed = [&](const char* reason) {
      if (dest_tracer != nullptr) {
        dest_tracer->Instant("router", "shed", t,
                             {Arg("request", request.id), Arg("reason", reason)});
      }
      if (dest_metrics != nullptr) {
        dest_metrics->AddCount("shed", t);
      }
    };
    if (!any_up) {
      shed[i] = true;  // Whole cluster down: reject immediately.
      record_shed("cluster_down");
      continue;
    }
    if (options_.shed_outstanding_s > 0.0) {
      AgeOutstanding(&router, t);
      double least = kInfinity;
      for (int r = 0; r < n; ++r) {
        if (!DownAt(r, t)) {
          least = std::min(least, router.outstanding_tokens[static_cast<size_t>(r)]);
        }
      }
      if (least / service_rate_ > options_.shed_outstanding_s) {
        shed[i] = true;
        record_shed("overload");
        continue;
      }
    }
    int pick = Route(request.total_tokens(), t, /*exclude=*/-1, &router);
    CHECK_GE(pick, 0);
    assignment_[i] = pick;
    chains[i].push_back({pick, t});
    InsertSorted(&sub[static_cast<size_t>(pick)], request);
  }

  // ---- Simulate; re-route crash-interrupted requests until quiescent ----
  std::vector<SimResult> results(static_cast<size_t>(n));
  auto simulate = [&](int r) {
    SimulatorOptions replica_options = options_.replica;
    replica_options.fail_interrupted_on_crash = true;
    replica_options.outages = outage_schedules_[static_cast<size_t>(r)];
    replica_options.trace_pid = r;
    replica_options.tracer = nullptr;
    replica_options.metrics = nullptr;
    if (dest_tracer != nullptr) {
      replica_tracers[static_cast<size_t>(r)] = std::make_unique<Tracer>();
      replica_options.tracer = replica_tracers[static_cast<size_t>(r)].get();
    }
    if (dest_metrics != nullptr) {
      replica_metrics[static_cast<size_t>(r)] =
          std::make_unique<MetricsRegistry>(dest_metrics->window_s());
      replica_options.metrics = replica_metrics[static_cast<size_t>(r)].get();
    }
    results[static_cast<size_t>(r)] =
        ReplicaSimulator(replica_options).Run(sub[static_cast<size_t>(r)]);
  };
  for (int r = 0; r < n; ++r) {
    simulate(r);
  }

  // Each round re-routes every retryable interruption and re-simulates the
  // replicas that received work. Re-simulation only ever adds load, so a
  // previously interrupted attempt stays interrupted and the loop converges:
  // total attempts are capped at num_requests * (max_retries + 1).
  int64_t round_guard =
      static_cast<int64_t>(num_requests) * (options_.max_retries + 1) + 1;
  while (round_guard-- > 0) {
    struct Retry {
      double time;
      size_t index;
    };
    std::vector<Retry> retries;
    for (size_t i = 0; i < num_requests; ++i) {
      if (shed[i] || failure_override[i].first != FailureKind::kNone) {
        continue;
      }
      const Attempt& last = chains[i].back();
      size_t slot = FindAttemptSlot(results[static_cast<size_t>(last.replica)],
                                    stamped.requests[i].id, last.arrival_s);
      CHECK_NE(slot, kNoSlot);
      const RequestMetrics& m = results[static_cast<size_t>(last.replica)].requests[slot];
      if (!m.failed() || m.failure != FailureKind::kReplicaCrash) {
        continue;  // Completed, still only timed out, or never failed.
      }
      int used = static_cast<int>(chains[i].size()) - 1;
      if (used >= options_.max_retries) {
        continue;  // Retries exhausted: the crash failure stands.
      }
      double backoff = options_.retry_backoff_s * static_cast<double>(int64_t{1} << used);
      double t = NextHealthyTime(m.failed_s + backoff);
      if (t == kInfinity) {
        continue;  // No replica ever recovers: the crash failure stands.
      }
      double deadline_abs =
          stamped.requests[i].deadline_s > 0.0
              ? stamped.requests[i].arrival_time_s + stamped.requests[i].deadline_s
              : 0.0;
      if (deadline_abs > 0.0 && t >= deadline_abs) {
        failure_override[i] = {FailureKind::kTimeout, deadline_abs};
        continue;  // The client will have given up before the retry lands.
      }
      retries.push_back({t, i});
    }
    if (retries.empty()) {
      break;
    }
    std::sort(retries.begin(), retries.end(), [](const Retry& a, const Retry& b) {
      if (a.time != b.time) {
        return a.time < b.time;
      }
      return a.index < b.index;
    });
    std::set<int> dirty;
    for (const Retry& retry : retries) {
      size_t i = retry.index;
      Request attempt = stamped.requests[i];
      attempt.arrival_time_s = retry.time;
      if (attempt.deadline_s > 0.0) {
        // The clock started at the original arrival; only the remainder is
        // available to the retried attempt.
        attempt.deadline_s = stamped.requests[i].arrival_time_s +
                             stamped.requests[i].deadline_s - retry.time;
      }
      int pick = Route(attempt.total_tokens(), retry.time, chains[i].back().replica, &router);
      CHECK_GE(pick, 0);
      if (dest_tracer != nullptr) {
        dest_tracer->Instant("router", "retry", retry.time,
                             {Arg("request", attempt.id),
                              Arg("replica", static_cast<int64_t>(pick))});
      }
      if (dest_metrics != nullptr) {
        dest_metrics->AddCount("retries", retry.time);
      }
      chains[i].push_back({pick, retry.time});
      InsertSorted(&sub[static_cast<size_t>(pick)], attempt);
      dirty.insert(pick);
    }
    for (int r : dirty) {
      simulate(r);
    }
  }

  // ---- Merge ----
  SimResult merged;
  merged.scheduler_name = results[0].scheduler_name + " x" + std::to_string(n) + " (" +
                          std::string(RoutingPolicyName(options_.routing)) + ")";
  merged.requests.resize(num_requests);
  std::vector<std::vector<bool>> consumed(static_cast<size_t>(n));
  for (int r = 0; r < n; ++r) {
    consumed[static_cast<size_t>(r)].assign(results[static_cast<size_t>(r)].requests.size(),
                                            false);
  }

  int64_t lost_tokens = 0;
  for (size_t i = 0; i < num_requests; ++i) {
    const Request& original = stamped.requests[i];
    if (shed[i]) {
      RequestMetrics m;
      m.id = original.id;
      m.arrival_s = original.arrival_time_s;
      m.deadline_s = original.deadline_s;
      m.failed_s = original.arrival_time_s;
      m.failure = FailureKind::kShed;
      merged.requests[i] = m;
      ++merged.num_shed;
      continue;
    }
    const auto& chain = chains[i];
    const RequestMetrics* final_attempt = nullptr;
    for (size_t a = 0; a < chain.size(); ++a) {
      SimResult& replica_result = results[static_cast<size_t>(chain[a].replica)];
      size_t slot = FindAttemptSlot(replica_result, original.id, chain[a].arrival_s);
      CHECK_NE(slot, kNoSlot);
      consumed[static_cast<size_t>(chain[a].replica)][slot] = true;
      if (a + 1 < chain.size()) {
        // Tokens streamed by an attempt that later crashed: the retry starts
        // over, so this service is lost (but never silently dropped).
        lost_tokens += static_cast<int64_t>(replica_result.requests[slot].token_times_s.size());
      } else {
        final_attempt = &replica_result.requests[slot];
      }
    }
    RequestMetrics m = *final_attempt;
    // Latency metrics measure from the client's original arrival, covering
    // every failed attempt and backoff wait.
    m.arrival_s = original.arrival_time_s;
    m.deadline_s = original.deadline_s;
    m.retries = static_cast<int64_t>(chain.size()) - 1;
    if (failure_override[i].first != FailureKind::kNone) {
      m.failure = failure_override[i].first;
      m.failed_s = failure_override[i].second;
    }
    merged.requests[i] = m;
  }
  // Forked siblings (parallel sampling) belong to no routing chain; append
  // them so their tokens and TBT samples stay in the merged metrics.
  for (int r = 0; r < n; ++r) {
    const SimResult& result = results[static_cast<size_t>(r)];
    for (size_t slot = 0; slot < result.requests.size(); ++slot) {
      if (!consumed[static_cast<size_t>(r)][slot]) {
        merged.requests.push_back(result.requests[slot]);
      }
    }
  }

  for (int r = 0; r < n; ++r) {
    const SimResult& result = results[static_cast<size_t>(r)];
    merged.num_iterations += result.num_iterations;
    merged.num_preemptions += result.num_preemptions;
    merged.makespan_s = std::max(merged.makespan_s, result.makespan_s);
    merged.active_window_s = std::max(merged.active_window_s, result.active_window_s);
    merged.total_output_tokens += result.total_output_tokens;
    merged.total_prefill_tokens += result.total_prefill_tokens;
    merged.total_flops += result.total_flops;
    merged.peak_flops += result.peak_flops;
    merged.total_bytes += result.total_bytes;
    merged.peak_bandwidth += result.peak_bandwidth;
    merged.stage_busy_s.insert(merged.stage_busy_s.end(), result.stage_busy_s.begin(),
                               result.stage_busy_s.end());
    merged.num_outages += result.num_outages;
    merged.downtime_s += result.downtime_s;
    merged.replica_downtime_s.push_back(result.downtime_s);
    merged.peak_kv_blocks += result.peak_kv_blocks;
    merged.total_kv_blocks += result.total_kv_blocks;
    if (dest_tracer != nullptr && replica_tracers[static_cast<size_t>(r)] != nullptr) {
      dest_tracer->Append(*replica_tracers[static_cast<size_t>(r)]);
    }
    if (dest_metrics != nullptr && replica_metrics[static_cast<size_t>(r)] != nullptr) {
      dest_metrics->MergeFrom(*replica_metrics[static_cast<size_t>(r)]);
    }
  }
  merged.total_output_tokens -= lost_tokens;
  merged.lost_output_tokens = lost_tokens;
  return merged;
}

}  // namespace sarathi
