#include "src/simulator/cluster_simulator.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <numeric>
#include <set>
#include <unordered_map>
#include <utility>

#include "src/common/logging.h"
#include "src/common/thread_pool.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/obs_hooks.h"
#include "src/robustness/retry_budget.h"
#include "src/simulator/telemetry.h"
#include "src/verify/invariant_checker.h"

namespace sarathi {
namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();
constexpr size_t kNoSlot = static_cast<size_t>(-1);

// Inserts `request` keeping the sub-trace sorted by arrival time; among equal
// arrivals the new request goes last (stable).
void InsertSorted(Trace* trace, const Request& request) {
  auto it = std::upper_bound(trace->requests.begin(), trace->requests.end(),
                             request.arrival_time_s,
                             [](double t, const Request& r) { return t < r.arrival_time_s; });
  trace->requests.insert(it, request);
}

// Sub-trace request of the service attempt with this id and arrival time, for
// stamping planned aborts (migration checkpoints, drains, hedge cancels).
Request* FindSubRequest(Trace* trace, int64_t id, double arrival_s) {
  for (Request& r : trace->requests) {
    if (r.id == id && r.arrival_time_s == arrival_s) {
      return &r;
    }
  }
  return nullptr;
}

// Sorts and coalesces overlapping/adjacent intervals in place. Domain crash
// faults merge into the independent per-replica outage schedule, which every
// consumer (DownAt, ReplicaSimulator) expects sorted and non-overlapping.
void MergeIntervals(std::vector<ReplicaOutage>* intervals) {
  std::sort(intervals->begin(), intervals->end(),
            [](const ReplicaOutage& a, const ReplicaOutage& b) {
              if (a.down_s != b.down_s) {
                return a.down_s < b.down_s;
              }
              return a.up_s < b.up_s;
            });
  std::vector<ReplicaOutage> merged;
  for (const ReplicaOutage& interval : *intervals) {
    if (!merged.empty() && interval.down_s <= merged.back().up_s) {
      merged.back().up_s = std::max(merged.back().up_s, interval.up_s);
    } else {
      merged.push_back(interval);
    }
  }
  *intervals = std::move(merged);
}

}  // namespace

std::string_view RoutingPolicyName(RoutingPolicy policy) {
  switch (policy) {
    case RoutingPolicy::kRoundRobin:
      return "round_robin";
    case RoutingPolicy::kLeastOutstandingWork:
      return "least_outstanding_work";
  }
  return "unknown";
}

std::string_view FailoverModeName(FailoverMode mode) {
  switch (mode) {
    case FailoverMode::kNone:
      return "none";
    case FailoverMode::kRecompute:
      return "recompute";
    case FailoverMode::kLiveMigrate:
      return "live_migrate";
  }
  return "unknown";
}

ClusterSimulator::ClusterSimulator(const ClusterOptions& options) : options_(options) {
  CHECK_GE(options_.num_replicas, 1);
  CHECK_GE(options_.max_retries, 0);
  CHECK_GT(options_.retry_backoff_s, 0.0);
  CHECK_GT(options_.migration_bandwidth_Bps, 0.0);
  CHECK_GE(options_.migration_latency_s, 0.0);
  CHECK_GE(options_.migration_delay_s, 0.0);
  if (options_.autoscale.min_replicas > 0) {
    CHECK_LE(options_.autoscale.min_replicas, options_.num_replicas);
    CHECK_GT(options_.autoscale.eval_interval_s, 0.0);
    CHECK_GE(options_.autoscale.provisioning_lag_s, 0.0);
    CHECK_GE(options_.autoscale.cooldown_s, 0.0);
    CHECK_GT(options_.autoscale.scale_out_queue_s, options_.autoscale.scale_in_queue_s);
  }
  // Built once and shared with every replica simulation (always serial within
  // a cluster run), so probes and retry rounds reuse one memo cache instead
  // of reconstructing a model each time.
  cost_model_ = options_.replica.cost_model;
  if (cost_model_ == nullptr) {
    cost_model_ = std::make_shared<IterationCostModel>(
        options_.replica.model, options_.replica.cluster, options_.replica.parallel);
  }
  if (options_.estimated_tokens_per_s > 0.0) {
    service_rate_ = options_.estimated_tokens_per_s;
  } else {
    // Default estimate: tokens a budget-sized hybrid iteration retires per
    // second, from the replica's cost model, derated for decode-phase
    // inefficiency (a request's decode tokens drain far slower than its
    // prefill tokens). Overestimating the drain would zero every replica's
    // outstanding count and blind the balancer.
    BatchWork probe;
    probe.sequences.push_back(SequenceWork::PrefillChunk(1024, 512));
    double iteration = cost_model_->IterationCost(probe).Total();
    service_rate_ = 0.4 * 512.0 / std::max(iteration, 1e-9);
  }
}

bool ClusterSimulator::DownAt(int replica, double t) const {
  for (const ReplicaOutage& outage : outage_schedules_[static_cast<size_t>(replica)]) {
    if (t < outage.down_s) {
      return false;
    }
    if (t < outage.up_s) {
      return true;
    }
  }
  return false;
}

bool ClusterSimulator::PartitionedAt(int replica, double t) const {
  for (const ReplicaOutage& window : partition_windows_[static_cast<size_t>(replica)]) {
    if (t < window.down_s) {
      return false;
    }
    if (t < window.up_s) {
      return true;
    }
  }
  return false;
}

double ClusterSimulator::SlowdownFactorAt(int replica, double t) const {
  for (const SlowdownEpisode& episode : slowdown_schedules_[static_cast<size_t>(replica)]) {
    if (t < episode.start_s) {
      return 1.0;
    }
    if (t < episode.end_s) {
      return episode.factor;
    }
  }
  return 1.0;
}

bool ClusterSimulator::DetectedDegradedAt(int replica, double t) const {
  for (const DetectedInterval& interval : detected_[static_cast<size_t>(replica)]) {
    if (t >= interval.begin_s && t < interval.end_s) {
      return true;
    }
  }
  return false;
}

bool ClusterSimulator::DetectedUnreachableAt(int replica, double t) const {
  for (const DetectedInterval& interval : detected_unreachable_[static_cast<size_t>(replica)]) {
    if (t >= interval.begin_s && t < interval.end_s) {
      return true;
    }
  }
  return false;
}

double ClusterSimulator::SlowStartFractionAt(int replica, double t) const {
  if (!options_.slow_start.enabled) {
    return 1.0;
  }
  // The ramp opened by the latest rejoin at or before t governs; earlier
  // ramps have either completed or been superseded.
  const auto& rejoins = rejoins_[static_cast<size_t>(replica)];
  double fraction = 1.0;
  for (auto it = rejoins.rbegin(); it != rejoins.rend(); ++it) {
    if (*it <= t) {
      fraction = SlowStartFraction(options_.slow_start, *it,
                                   domain_index_of_[static_cast<size_t>(replica)], t);
      break;
    }
  }
  return fraction;
}

bool ClusterSimulator::ProvisionedAt(int replica, double t) const {
  if (!autoscale_active_) {
    return true;
  }
  for (const ProvisionWindow& window : provision_windows_[static_cast<size_t>(replica)]) {
    if (t < window.from_s) {
      return false;  // Windows are appended in from_s order.
    }
    if (t < window.to_s) {
      return true;
    }
  }
  return false;
}

CostCacheStats ClusterSimulator::cost_cache_stats() const {
  CostCacheStats total = cost_model_->cache_stats();
  for (const auto& model : shard_models_) {
    const CostCacheStats& stats = model->cache_stats();
    total.linear_hits += stats.linear_hits;
    total.linear_misses += stats.linear_misses;
    total.shape_hits += stats.shape_hits;
    total.shape_misses += stats.shape_misses;
  }
  return total;
}

double ClusterSimulator::NextHealthyTime(double t) const {
  double earliest_up = kInfinity;
  for (int r = 0; r < options_.num_replicas; ++r) {
    if (!DownAt(r, t)) {
      return t;
    }
    for (const ReplicaOutage& outage : outage_schedules_[static_cast<size_t>(r)]) {
      if (t >= outage.down_s && t < outage.up_s) {
        earliest_up = std::min(earliest_up, outage.up_s);
        break;
      }
    }
  }
  return earliest_up;
}

void ClusterSimulator::AgeOutstanding(RouterState* state, double now) const {
  for (int i = 0; i < options_.num_replicas; ++i) {
    auto& last = state->last_update[static_cast<size_t>(i)];
    if (last >= now) {
      continue;  // Out-of-order retry timestamps never rewind the estimate.
    }
    auto& tokens = state->outstanding_tokens[static_cast<size_t>(i)];
    tokens = std::max(0.0, tokens - (now - last) * service_rate_);
    last = now;
  }
}

int ClusterSimulator::Route(int64_t tokens, double now, int exclude,
                            RouterState* state) {
  const int n = options_.num_replicas;
  // O(1) fast path for the fleet-scale hot loop: with no fault or detection
  // signal anywhere, no quarantine possible, round-robin routing, and neither
  // backpressure nor slow-start gating configured, the general scan below
  // always picks the cursor itself (or, under autoscaling, the first replica
  // of the provisioned prefix [0, open_replicas_) when the cursor is past
  // it). This reproduces the general path's picks and state updates exactly —
  // the general RR branch never ages outstanding estimates — so taking it is
  // invisible to results.
  if (fast_route_ && exclude < 0) {
    int pick = state->rr_cursor;
    if (autoscale_active_ && pick >= open_replicas_) {
      if (open_replicas_ == 0) {
        return -1;  // Nothing provisioned (matches the num_live == 0 return).
      }
      pick = 0;  // The scan wraps to the provisioned prefix [0, open).
    }
    state->rr_cursor = (state->rr_cursor + 1) % n;
    state->outstanding_tokens[static_cast<size_t>(pick)] += static_cast<double>(tokens);
    return pick;
  }
  // A ground-truth-partitioned replica is not dispatchable: a new connection
  // to it never answers, so the router's dispatch attempt fails exactly like
  // a connection to a crashed host — what it cannot tell (dead vs
  // unreachable) is how to treat the work already in flight there, which is
  // the prober's job. An unprovisioned replica (autoscaling) has no host to
  // connect to at all.
  auto live = [&](int r) {
    return !DownAt(r, now) && !PartitionedAt(r, now) &&
           !quarantined_[static_cast<size_t>(r)] && ProvisionedAt(r, now);
  };
  // Detected-degraded and detected-unreachable replicas are shunned alike
  // while a clean alternative exists.
  auto suspect = [&](int r) {
    return DetectedDegradedAt(r, now) || DetectedUnreachableAt(r, now);
  };
  int num_live = 0;       // Up, reachable, and not quarantined.
  int num_preferred = 0;  // Live and not detected degraded/unreachable.
  for (int r = 0; r < n; ++r) {
    bool is_live = live(r);
    num_live += is_live ? 1 : 0;
    num_preferred += (is_live && !suspect(r)) ? 1 : 0;
  }
  if (num_live == 0) {
    return -1;
  }
  // Circuit breaker: when any live replica is not detected degraded, restrict
  // the choice to those; otherwise fall back to whatever is live.
  bool prefer = options_.avoid_degraded && num_preferred > 0;
  // Avoid the replica that just failed the request — unless it is the only
  // eligible one standing.
  int num_eligible = prefer ? num_preferred : num_live;
  bool avoid = exclude >= 0 && !(num_eligible == 1 && live(exclude) &&
                                 (!prefer || !suspect(exclude)));
  auto eligible = [&](int r) {
    return live(r) && !(prefer && suspect(r)) && !(avoid && r == exclude);
  };
  // Backpressure propagation: a replica whose estimated outstanding work
  // exceeds the bound has a standing queue; while any eligible replica is
  // under the bound, restrict the choice to those. When every eligible
  // replica is over the bound, backpressure cannot help and routing falls
  // back to plain least-loaded (shedding is the admission layer's job).
  bool shun_pressured = false;
  auto pressured = [&](int r) {
    return state->outstanding_tokens[static_cast<size_t>(r)] >
           options_.backpressure_queue_s * service_rate_;
  };
  if (options_.backpressure_queue_s > 0.0) {
    AgeOutstanding(state, now);
    int num_unpressured = 0;
    int num_allowed = 0;
    for (int r = 0; r < n; ++r) {
      if (!eligible(r)) {
        continue;
      }
      ++num_allowed;
      num_unpressured += pressured(r) ? 0 : 1;
    }
    if (num_unpressured > 0 && num_unpressured < num_allowed) {
      shun_pressured = true;
      ++backpressure_skips_;
    }
  }
  // Slow-start gating (anti-metastable): a replica still ramping after a
  // rejoin only accepts outstanding work up to its current admission fraction
  // of the queue bound. While any eligible replica is not ramp-limited,
  // restrict the choice to those; when every choice is ramping, the
  // least-loaded fallback still routes (the breaker, not the router, decides
  // what to refuse outright).
  bool shun_ramping = false;
  auto ramp_limited = [&](int r) {
    double fraction = SlowStartFractionAt(r, now);
    if (fraction >= 1.0) {
      return false;
    }
    if (fraction <= 0.0) {
      return true;  // Stagger gate not open yet: admit nothing.
    }
    double cap_s = options_.slow_start_cap_s > 0.0       ? options_.slow_start_cap_s
                   : options_.backpressure_queue_s > 0.0 ? options_.backpressure_queue_s
                                                         : 4.0;
    return state->outstanding_tokens[static_cast<size_t>(r)] >
           fraction * cap_s * service_rate_;
  };
  if (options_.slow_start.enabled) {
    AgeOutstanding(state, now);
    int num_open = 0;
    int num_allowed = 0;
    for (int r = 0; r < n; ++r) {
      if (!eligible(r)) {
        continue;
      }
      ++num_allowed;
      num_open += ramp_limited(r) ? 0 : 1;
    }
    if (num_open > 0 && num_open < num_allowed) {
      shun_ramping = true;
    }
  }
  auto allowed = [&](int r) {
    return eligible(r) && !(shun_pressured && pressured(r)) &&
           !(shun_ramping && ramp_limited(r));
  };

  int pick = -1;
  if (options_.routing == RoutingPolicy::kRoundRobin) {
    for (int k = 0; k < n; ++k) {
      int r = (state->rr_cursor + k) % n;
      if (allowed(r)) {
        pick = r;
        break;
      }
    }
  } else {
    // Age each replica's outstanding estimate, then pick the least loaded.
    // The scan starts at a rotating offset so drained (all-zero) states
    // degrade to round-robin instead of pinning replica 0.
    AgeOutstanding(state, now);
    for (int k = 0; k < n; ++k) {
      int r = (state->rr_cursor + k) % n;
      if (!allowed(r)) {
        continue;
      }
      if (pick < 0 || state->outstanding_tokens[static_cast<size_t>(r)] <
                          state->outstanding_tokens[static_cast<size_t>(pick)]) {
        pick = r;
      }
    }
  }
  state->rr_cursor = (state->rr_cursor + 1) % n;
  if (pick < 0) {
    return -1;  // Everything live was excluded.
  }
  if (options_.slow_start.enabled && SlowStartFractionAt(pick, now) < 1.0) {
    ++slow_start_admits_;  // Admitted under a rejoining replica's ramp.
  }
  state->outstanding_tokens[static_cast<size_t>(pick)] += static_cast<double>(tokens);
  return pick;
}

SimResult ClusterSimulator::Run(const Trace& trace) {
  const int n = options_.num_replicas;
  const size_t num_requests = trace.size();

  FaultInjector injector(options_.faults);
  Trace stamped = trace;
  injector.ApplyTimeouts(&stamped);

  double last_arrival = 0.0;
  int64_t trace_tokens = 0;
  for (const Request& r : stamped.requests) {
    last_arrival = std::max(last_arrival, r.arrival_time_s);
    trace_tokens += r.total_tokens();
  }
  double horizon = options_.fault_horizon_s;
  if (horizon <= 0.0) {
    // Cover the arrival span plus a generous multiple of the estimated drain.
    horizon = last_arrival + 60.0 +
              4.0 * static_cast<double>(trace_tokens) / (service_rate_ * n);
  }
  outage_schedules_.assign(static_cast<size_t>(n), {});
  slowdown_schedules_.assign(static_cast<size_t>(n), {});
  for (int r = 0; r < n; ++r) {
    outage_schedules_[static_cast<size_t>(r)] = injector.OutagesFor(r, horizon);
    if (!options_.slowdown_overrides.empty()) {
      if (static_cast<size_t>(r) < options_.slowdown_overrides.size()) {
        slowdown_schedules_[static_cast<size_t>(r)] =
            options_.slowdown_overrides[static_cast<size_t>(r)];
      }
    } else {
      slowdown_schedules_[static_cast<size_t>(r)] = injector.SlowdownsFor(r, horizon);
    }
  }
  quarantined_.assign(static_cast<size_t>(n), false);

  // ---- Autoscaling ----
  // Replicas [0, min_replicas) are provisioned for the whole run (the floor
  // that guarantees the router always has a destination); everything above
  // the floor opens and closes as the arrival pass evaluates the signals.
  // The provisioned set is always a contiguous prefix [0, k): scale-out opens
  // the lowest-index unopened replica, scale-in closes (or cancels) the
  // highest-index open-or-pending one, and launches activate in index order —
  // the invariant the O(1) routing fast path relies on.
  autoscale_active_ = options_.autoscale.min_replicas > 0;
  provision_windows_.assign(static_cast<size_t>(n), {});
  scale_events_.clear();
  const int min_provisioned =
      autoscale_active_ ? std::min(options_.autoscale.min_replicas, n) : n;
  if (autoscale_active_) {
    for (int r = 0; r < min_provisioned; ++r) {
      provision_windows_[static_cast<size_t>(r)].push_back({0.0, kInfinity});
    }
  }
  open_replicas_ = min_provisioned;

  // ---- Correlated failure domains ----
  // Replicas are grouped into contiguous, balanced domains; a domain fault
  // takes every member out at once. Crash faults merge into the members'
  // independent outage schedules (every downstream consumer sees one sorted,
  // non-overlapping schedule). Partition faults form their own windows: the
  // member keeps executing, but nothing it emits reaches the client and no
  // new work can be dispatched to it until the window heals.
  partition_windows_.assign(static_cast<size_t>(n), {});
  domain_of_.assign(static_cast<size_t>(n), 0);
  domain_index_of_.assign(static_cast<size_t>(n), 0);
  std::vector<DomainStatus> domain_status;
  if (options_.faults.any_domain_faults()) {
    const int num_domains = std::min(options_.faults.num_domains, n);
    domain_status.resize(static_cast<size_t>(num_domains));
    std::vector<int> members_seen(static_cast<size_t>(num_domains), 0);
    for (int r = 0; r < n; ++r) {
      int d = r * num_domains / n;
      domain_of_[static_cast<size_t>(r)] = d;
      domain_index_of_[static_cast<size_t>(r)] = members_seen[static_cast<size_t>(d)]++;
    }
    for (int d = 0; d < num_domains; ++d) {
      DomainStatus& status = domain_status[static_cast<size_t>(d)];
      status.domain = d;
      status.num_replicas = members_seen[static_cast<size_t>(d)];
      for (const DomainFault& fault : injector.DomainFaultsFor(d, horizon)) {
        double span = std::min(fault.up_s, horizon) - fault.down_s;
        if (fault.kind == DomainFaultKind::kCrash) {
          ++status.crashes;
          status.down_s += span * status.num_replicas;
        } else {
          ++status.partitions;
          status.partitioned_s += span * status.num_replicas;
        }
        for (int r = 0; r < n; ++r) {
          if (domain_of_[static_cast<size_t>(r)] != d) {
            continue;
          }
          auto* schedule = fault.kind == DomainFaultKind::kCrash
                               ? &outage_schedules_[static_cast<size_t>(r)]
                               : &partition_windows_[static_cast<size_t>(r)];
          schedule->push_back({fault.down_s, fault.up_s});
        }
      }
    }
    for (int r = 0; r < n; ++r) {
      MergeIntervals(&outage_schedules_[static_cast<size_t>(r)]);
      MergeIntervals(&partition_windows_[static_cast<size_t>(r)]);
    }
  }
  // Slow-start ramps open at every rejoin — crash recovery or partition heal,
  // domain-correlated or independent alike.
  rejoins_.assign(static_cast<size_t>(n), {});
  if (options_.slow_start.enabled) {
    for (int r = 0; r < n; ++r) {
      auto& rejoins = rejoins_[static_cast<size_t>(r)];
      for (const ReplicaOutage& outage : outage_schedules_[static_cast<size_t>(r)]) {
        rejoins.push_back(outage.up_s);
      }
      for (const ReplicaOutage& window : partition_windows_[static_cast<size_t>(r)]) {
        rejoins.push_back(window.up_s);
      }
      std::sort(rejoins.begin(), rejoins.end());
    }
  }

  // ---- Health probing ----
  // The prober replays the fault schedules (ground truth the replicas will
  // execute) on its fixed cadence before any simulation: detection intervals
  // are a pure function of the schedules, with realistic lag from EWMA
  // warm-up and hysteresis, and are then consulted by every routing decision
  // at that decision's own timestamp — no oracle.
  detected_.assign(static_cast<size_t>(n), {});
  detected_unreachable_.assign(static_cast<size_t>(n), {});
  HealthProber prober(n, options_.prober);
  bool any_signal = false;
  for (int r = 0; r < n; ++r) {
    any_signal |= !outage_schedules_[static_cast<size_t>(r)].empty() ||
                  !slowdown_schedules_[static_cast<size_t>(r)].empty() ||
                  !partition_windows_[static_cast<size_t>(r)].empty();
  }
  // O(1) routing fast path (see Route): valid while nothing can make the
  // general scan deviate from "pick the cursor within the provisioned
  // prefix" — no fault/detection signal anywhere (which also rules out
  // quarantine: failover needs a detection to act on), round-robin policy,
  // and no backpressure or slow-start queue gating.
  fast_route_ = !any_signal && options_.routing == RoutingPolicy::kRoundRobin &&
                !options_.slow_start.enabled && options_.backpressure_queue_s <= 0.0;
  if (any_signal) {
    for (double t = options_.prober.probe_interval_s; t <= horizon;
         t += options_.prober.probe_interval_s) {
      for (int r = 0; r < n; ++r) {
        if (DownAt(r, t)) {
          // Connection refused: the prober knows the replica is dead.
          prober.MarkDown(r, t);
        } else if (PartitionedAt(r, t)) {
          // Probe sent, no answer: silence, which the prober must not
          // misread as death — after enough consecutive silent samples it
          // declares the replica unreachable instead.
          prober.ObserveSilence(r, t);
        } else {
          prober.Observe(r, t, SlowdownFactorAt(r, t));
        }
      }
    }
    for (int r = 0; r < n; ++r) {
      detected_[static_cast<size_t>(r)] = prober.DegradedIntervals(r);
      detected_unreachable_[static_cast<size_t>(r)] = prober.UnreachableIntervals(r);
    }
  }

  // ---- Observability ----
  // Retry rounds re-simulate replicas from scratch; a shared tracer would
  // accumulate duplicate events from the discarded rounds. Instead every
  // simulate() call starts that replica on a fresh tracer/registry (replacing
  // the previous round's), and the final per-replica state merges into the
  // caller's sinks at the end of Run. Router-level events (sheds, retries,
  // health transitions, failovers, hedges) are recorded directly into the
  // destination tracer as process `n`.
  Tracer* dest_tracer =
      options_.replica.tracer != nullptr && options_.replica.tracer->enabled()
          ? options_.replica.tracer
          : nullptr;
  MetricsRegistry* dest_metrics = options_.replica.metrics;
  // The flight recorder and SLO monitor get the merged, client-visible
  // timeline replayed post-hoc (end of Run) rather than the per-round replica
  // feeds, which would double-count every re-simulated attempt and fire
  // triggers for rounds that were discarded.
  FlightRecorder* flight = options_.replica.flight;
  SloMonitor* slo = options_.replica.slo;
  ObsHooks router_obs;
  router_obs.tracer = dest_tracer;
  router_obs.metrics = dest_metrics;
  std::vector<std::unique_ptr<Tracer>> replica_tracers(static_cast<size_t>(n));
  std::vector<std::unique_ptr<MetricsRegistry>> replica_metrics(static_cast<size_t>(n));
  if (dest_tracer != nullptr) {
    dest_tracer->set_default_pid(n);
    dest_tracer->SetProcessName(n, "router");
    for (const HealthTransition& tr : prober.transitions()) {
      dest_tracer->Instant("router", std::string(ReplicaHealthName(tr.to)), tr.time_s,
                           {Arg("replica", static_cast<int64_t>(tr.replica))});
    }
    for (int r = 0; r < n; ++r) {
      for (const ReplicaOutage& window : partition_windows_[static_cast<size_t>(r)]) {
        dest_tracer->Instant("router", "partition", window.down_s,
                             {Arg("replica", static_cast<int64_t>(r))});
        dest_tracer->Instant("router", "rejoined", window.up_s,
                             {Arg("replica", static_cast<int64_t>(r))});
      }
    }
  }
  if (dest_metrics != nullptr) {
    for (const HealthTransition& tr : prober.transitions()) {
      dest_metrics->AddCount("probe_transitions", tr.time_s);
    }
  }

  // ---- Initial routing (health-aware, with admission control) ----
  std::vector<Trace> sub(static_cast<size_t>(n));
  for (Trace& s : sub) {
    s.name = trace.name;
  }
  assignment_.assign(num_requests, -1);
  // Service-attempt history per trace request: (replica, attempt arrival).
  // migrated_in marks attempts that resumed from transferred KV.
  struct Attempt {
    int replica;
    double arrival_s;
    bool migrated_in = false;
  };
  std::vector<std::vector<Attempt>> chains(num_requests);
  std::vector<bool> shed(num_requests, false);
  // Router-decided final failures: a retry whose remaining deadline had
  // already expired is recorded as a timeout, not retried.
  std::vector<std::pair<FailureKind, double>> failure_override(
      num_requests, {FailureKind::kNone, -1.0});

  RouterState router;
  router.outstanding_tokens.assign(static_cast<size_t>(n), 0.0);
  router.last_update.assign(static_cast<size_t>(n), 0.0);
  backpressure_skips_ = 0;
  slow_start_admits_ = 0;

  // ---- Cascade breaker ----
  // The breaker works from the offered-load and surviving-capacity timelines
  // alone — both known up front (arrivals from the trace, capacity steps from
  // the ground-truth fault schedules and the memoized cost model's
  // service-rate estimate). It engages when offered load outruns surviving
  // capacity, sheds down to a survivable fraction while engaged, and clears
  // only once the modeled backlog has drained — the condition that prevents
  // metastable lock-in.
  cascade_engaged_.clear();
  CascadeBreaker breaker(options_.cascade);
  if (options_.cascade.enabled) {
    std::vector<RateSample> arrivals;
    arrivals.reserve(num_requests);
    for (const Request& r : stamped.requests) {
      arrivals.push_back({r.arrival_time_s, static_cast<double>(r.total_tokens())});
    }
    std::sort(arrivals.begin(), arrivals.end(),
              [](const RateSample& a, const RateSample& b) { return a.t_s < b.t_s; });
    std::vector<double> edges = {0.0};
    for (int r = 0; r < n; ++r) {
      for (const ReplicaOutage& outage : outage_schedules_[static_cast<size_t>(r)]) {
        edges.push_back(outage.down_s);
        edges.push_back(outage.up_s);
      }
      for (const ReplicaOutage& window : partition_windows_[static_cast<size_t>(r)]) {
        edges.push_back(window.down_s);
        edges.push_back(window.up_s);
      }
    }
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    std::vector<RateSample> capacity;
    capacity.reserve(edges.size());
    for (double e : edges) {
      int up = 0;
      for (int r = 0; r < n; ++r) {
        up += (!DownAt(r, e) && !PartitionedAt(r, e)) ? 1 : 0;
      }
      capacity.push_back({e, static_cast<double>(up) * service_rate_});
    }
    breaker.Build(arrivals, capacity, horizon);
    cascade_engaged_ = breaker.engaged();
    if (dest_tracer != nullptr) {
      for (const CascadeInterval& interval : cascade_engaged_) {
        dest_tracer->Instant("router", "cascade_engaged", interval.begin_s);
        dest_tracer->Instant("router", "cascade_cleared", interval.end_s);
      }
    }
  }

  // Token-bucket retry budget (overload control): credited by initial
  // routing, spent by crash retries. A request denied a token never re-asks —
  // its crash failure stands — so denials are bounded by the request count.
  RetryBudget retry_budget(options_.retry_budget_ratio, options_.retry_budget_burst);
  if (router_obs.active()) {
    retry_budget.set_obs(&router_obs);
  }
  std::vector<bool> retry_denied(num_requests, false);
  int64_t retries_denied = 0;
  int64_t hedges_suppressed = 0;

  // ---- Autoscaler pass state ----
  // Decisions are made only here, at arrival-time eval instants, so the
  // provision timeline is fixed before any replica simulates and later
  // retry/failover rounds replay against the same windows — deterministic by
  // construction. Launch activations (from_s = decision + provisioning lag)
  // are applied as the time-ordered pass reaches them.
  int64_t autoscale_out = 0;
  int64_t autoscale_in = 0;
  int peak_provisioned = autoscale_active_ ? min_provisioned : 0;
  std::vector<std::pair<double, int>> pending_activation;  // (from_s, replica)
  size_t activation_ptr = 0;
  int opened_or_pending = min_provisioned;
  double next_eval = 0.0;
  double last_scale = -kInfinity;
  // Sliding window of cost-model-predicted TBT samples for the latency
  // signal, plus a memo keyed by (concurrency, quantized context) — the
  // prediction is a pure function of those two.
  std::vector<std::pair<double, double>> tbt_samples;
  size_t tbt_head = 0;
  std::unordered_map<int64_t, double> tbt_memo;
  auto apply_activation = [&](const std::pair<double, int>& activation) {
    ++open_replicas_;
    if (options_.slow_start.enabled) {
      // A scale-out activation is a rejoin: the fresh replica re-admits
      // through the same staggered ramp a crash-recovered one would.
      auto& rejoins = rejoins_[static_cast<size_t>(activation.second)];
      rejoins.insert(std::upper_bound(rejoins.begin(), rejoins.end(), activation.first),
                     activation.first);
    }
  };

  for (size_t i = 0; i < num_requests; ++i) {
    const Request& request = stamped.requests[i];
    double t = request.arrival_time_s;
    if (autoscale_active_) {
      while (activation_ptr < pending_activation.size() &&
             pending_activation[activation_ptr].first <= t) {
        apply_activation(pending_activation[activation_ptr]);
        ++activation_ptr;
      }
      peak_provisioned = std::max(peak_provisioned, open_replicas_);
      if (t >= next_eval) {
        next_eval = t + options_.autoscale.eval_interval_s;
        AgeOutstanding(&router, t);
        double backlog = 0.0;
        for (int r = 0; r < open_replicas_; ++r) {
          backlog += router.outstanding_tokens[static_cast<size_t>(r)];
        }
        backlog /= static_cast<double>(std::max(1, open_replicas_)) * service_rate_;
        double p99 = 0.0;
        if (options_.autoscale.tbt_slo_s > 0.0) {
          while (tbt_head < tbt_samples.size() &&
                 tbt_samples[tbt_head].first < t - options_.autoscale.tbt_window_s) {
            ++tbt_head;
          }
          if (tbt_head < tbt_samples.size()) {
            std::vector<double> window;
            window.reserve(tbt_samples.size() - tbt_head);
            for (size_t s = tbt_head; s < tbt_samples.size(); ++s) {
              window.push_back(tbt_samples[s].second);
            }
            size_t rank = (window.size() - 1) * 99 / 100;
            std::nth_element(window.begin(), window.begin() + static_cast<long>(rank),
                             window.end());
            p99 = window[rank];
          }
        }
        bool slow = options_.autoscale.tbt_slo_s > 0.0 && p99 > options_.autoscale.tbt_slo_s;
        bool cooled = t - last_scale >= options_.autoscale.cooldown_s;
        if (cooled && (backlog > options_.autoscale.scale_out_queue_s || slow) &&
            opened_or_pending < n) {
          int idx = opened_or_pending++;
          double from_s = t + options_.autoscale.provisioning_lag_s;
          provision_windows_[static_cast<size_t>(idx)].push_back({from_s, kInfinity});
          pending_activation.push_back({from_s, idx});
          scale_events_.push_back({t, idx, true});
          ++autoscale_out;
          last_scale = t;
          if (dest_tracer != nullptr) {
            dest_tracer->Instant("router", "scale_out", t,
                                 {Arg("replica", static_cast<int64_t>(idx))});
          }
          if (dest_metrics != nullptr) {
            dest_metrics->AddCount("scale_events", t);
          }
        } else if (cooled && !slow && backlog < options_.autoscale.scale_in_queue_s &&
                   opened_or_pending > min_provisioned) {
          int idx = --opened_or_pending;
          auto& windows = provision_windows_[static_cast<size_t>(idx)];
          if (windows.back().from_s > t) {
            // Still booting: cancel the launch outright. Activations are in
            // index order, so the cancelled one is the newest pending entry.
            windows.pop_back();
            pending_activation.pop_back();
          } else {
            windows.back().to_s = t;  // Drain: no new work, in-flight finishes.
            --open_replicas_;
          }
          scale_events_.push_back({t, idx, false});
          ++autoscale_in;
          last_scale = t;
          if (dest_tracer != nullptr) {
            dest_tracer->Instant("router", "scale_in", t,
                                 {Arg("replica", static_cast<int64_t>(idx))});
          }
          if (dest_metrics != nullptr) {
            dest_metrics->AddCount("scale_events", t);
          }
        }
      }
    }
    bool any_up;
    if (!any_signal) {
      // No outage/partition window exists anywhere: reachability reduces to
      // having a provisioned replica, with no per-replica scan.
      any_up = !autoscale_active_ || open_replicas_ > 0;
    } else {
      any_up = false;
      for (int r = 0; r < n; ++r) {
        any_up |= !DownAt(r, t) && !PartitionedAt(r, t) && ProvisionedAt(r, t);
      }
    }
    auto record_shed = [&](const char* reason) {
      if (dest_tracer != nullptr) {
        dest_tracer->Instant("router", "shed", t,
                             {Arg("request", request.id), Arg("reason", reason)});
      }
      if (dest_metrics != nullptr) {
        dest_metrics->AddCount("shed", t);
      }
    };
    if (!any_up) {
      shed[i] = true;  // Whole cluster down: reject immediately.
      record_shed("cluster_down");
      continue;
    }
    if (options_.shed_outstanding_s > 0.0) {
      AgeOutstanding(&router, t);
      double least = kInfinity;
      for (int r = 0; r < n; ++r) {
        if (!DownAt(r, t) && ProvisionedAt(r, t)) {
          least = std::min(least, router.outstanding_tokens[static_cast<size_t>(r)]);
        }
      }
      if (least / service_rate_ > options_.shed_outstanding_s) {
        shed[i] = true;
        record_shed("overload");
        continue;
      }
    }
    if (options_.cascade.enabled && !breaker.AdmitArrival(t, request.total_tokens())) {
      shed[i] = true;  // Breaker engaged: shed down to survivable load.
      record_shed("cascade");
      continue;
    }
    int pick = Route(request.total_tokens(), t, /*exclude=*/-1, &router);
    CHECK_GE(pick, 0);  // Quarantine is empty during initial routing.
    if (autoscale_active_ && options_.autoscale.tbt_slo_s > 0.0) {
      // Latency signal sample: the cost model's decode-iteration time at the
      // destination's estimated concurrency — its outstanding work divided
      // into requests of this arrival's size, decoding at mid-generation
      // context (quantized so the memo stays small).
      int64_t context = request.prompt_tokens + request.output_tokens / 2;
      int64_t context_q = (context / 64 + 1) * 64;
      int64_t concurrency = std::max<int64_t>(
          1, static_cast<int64_t>(
                 router.outstanding_tokens[static_cast<size_t>(pick)] /
                 static_cast<double>(std::max<int64_t>(1, request.total_tokens()))));
      concurrency = std::min<int64_t>(concurrency, 64);
      int64_t key = (concurrency << 32) | context_q;
      auto [memo, inserted] = tbt_memo.try_emplace(key, 0.0);
      if (inserted) {
        BatchWork batch;
        for (int64_t s = 0; s < concurrency; ++s) {
          batch.sequences.push_back(SequenceWork::Decode(context_q));
        }
        memo->second = cost_model_->IterationCost(batch).Total();
      }
      tbt_samples.push_back({t, memo->second});
    }
    assignment_[i] = pick;
    chains[i].push_back({pick, t, false});
    retry_budget.OnRequest(t);
    InsertSorted(&sub[static_cast<size_t>(pick)], request);
  }
  if (autoscale_active_) {
    // Launches still pending after the last arrival open anyway (their
    // windows exist); account them and drop the O(1) fast path — Route calls
    // from retry/failover rounds land at arbitrary times and must consult
    // the windows themselves.
    while (activation_ptr < pending_activation.size()) {
      apply_activation(pending_activation[activation_ptr]);
      ++activation_ptr;
    }
    peak_provisioned = std::max(peak_provisioned, open_replicas_);
    fast_route_ = false;
  }

  // Absolute client deadline per request (0 = none). A client timeout-retry
  // restarts the client's clock, so the window is mutable state rather than a
  // pure function of the stamped trace.
  std::vector<double> deadline_abs(num_requests, 0.0);
  for (size_t i = 0; i < num_requests; ++i) {
    if (stamped.requests[i].deadline_s > 0.0) {
      deadline_abs[i] = stamped.requests[i].arrival_time_s + stamped.requests[i].deadline_s;
    }
  }

  // ---- Simulate; re-route crash-interrupted requests until quiescent ----
  std::vector<SimResult> results(static_cast<size_t>(n));
  // Per-replica attempt index: request id -> (attempt arrival, metrics slot),
  // invalidated when the replica re-simulates and rebuilt lazily. Replaces
  // the linear result scans that dominated fleet-scale merges.
  std::vector<std::unordered_map<int64_t, std::vector<std::pair<double, size_t>>>>
      attempt_index(static_cast<size_t>(n));
  auto simulate = [&](int r, const std::shared_ptr<IterationCostModel>& model,
                      InvariantChecker* checker) {
    SimulatorOptions replica_options = options_.replica;
    replica_options.cost_model = model;
    replica_options.checker = checker;
    replica_options.fail_interrupted_on_crash = true;
    replica_options.outages = outage_schedules_[static_cast<size_t>(r)];
    replica_options.slowdowns = slowdown_schedules_[static_cast<size_t>(r)];
    replica_options.jitter_probability = injector.options().jitter_probability;
    replica_options.jitter_max_extra = injector.options().jitter_max_extra;
    replica_options.jitter_seed = injector.options().seed;
    replica_options.trace_pid = r;
    replica_options.tracer = nullptr;
    replica_options.metrics = nullptr;
    // Shared PR-level sinks never see discarded retry rounds; the merged
    // result is replayed into them once at the end of Run.
    replica_options.flight = nullptr;
    replica_options.slo = nullptr;
    if (dest_tracer != nullptr) {
      replica_tracers[static_cast<size_t>(r)] = std::make_unique<Tracer>();
      replica_options.tracer = replica_tracers[static_cast<size_t>(r)].get();
    }
    if (dest_metrics != nullptr) {
      replica_metrics[static_cast<size_t>(r)] =
          std::make_unique<MetricsRegistry>(dest_metrics->window_s());
      replica_options.metrics = replica_metrics[static_cast<size_t>(r)].get();
    }
    results[static_cast<size_t>(r)] =
        ReplicaSimulator(replica_options).Run(sub[static_cast<size_t>(r)]);
    attempt_index[static_cast<size_t>(r)].clear();
  };
  // ---- Sharded parallel execution ----
  // Replicas partition into contiguous shards, one RunMany task per shard.
  // Each shard owns a private memoized cost model (the caches are not thread-
  // safe; cached and uncached evaluation are bit-identical, so per-shard
  // caches cannot change results) and a private per-round invariant checker
  // merged back in shard order. The shard layout is a pure function of
  // (jobs, num_replicas); whether RunMany actually spawns threads is the
  // host's business and never affects results.
  const int num_shards = std::max(1, std::min(ResolveJobs(options_.jobs), n));
  if (num_shards > 1 && static_cast<int>(shard_models_.size()) != num_shards) {
    shard_models_.assign(static_cast<size_t>(num_shards), nullptr);
    for (auto& model : shard_models_) {
      model = std::make_shared<IterationCostModel>(
          options_.replica.model, options_.replica.cluster, options_.replica.parallel);
    }
  }
  auto simulate_all = [&](const std::vector<int>& dirty) {
    if (num_shards <= 1) {
      for (int r : dirty) {
        simulate(r, cost_model_, options_.replica.checker);
      }
      return;
    }
    std::vector<std::vector<int>> members(static_cast<size_t>(num_shards));
    for (int r : dirty) {
      members[static_cast<size_t>(static_cast<int64_t>(r) * num_shards / n)].push_back(r);
    }
    std::vector<int> active;
    for (int s = 0; s < num_shards; ++s) {
      if (!members[static_cast<size_t>(s)].empty()) {
        active.push_back(s);
      }
    }
    // Fresh per-shard checkers with the destination's own cap: every shard
    // appends its violations in replica order, and merging the shards in
    // order reproduces exactly the retained-violation sequence a serial pass
    // over the same (ascending) dirty set would have accumulated — any
    // prefix-of-a-concatenation is the concatenation of prefixes.
    InvariantChecker* dest_checker = options_.replica.checker;
    std::vector<std::unique_ptr<InvariantChecker>> shard_checkers(active.size());
    if (dest_checker != nullptr) {
      for (auto& checker : shard_checkers) {
        checker = std::make_unique<InvariantChecker>(dest_checker->options());
      }
    }
    RunMany(num_shards, static_cast<int64_t>(active.size()), [&](int64_t task) {
      int s = active[static_cast<size_t>(task)];
      InvariantChecker* checker =
          dest_checker != nullptr ? shard_checkers[static_cast<size_t>(task)].get() : nullptr;
      for (int r : members[static_cast<size_t>(s)]) {
        simulate(r, shard_models_[static_cast<size_t>(s)], checker);
      }
      return 0;
    });
    if (dest_checker != nullptr) {
      for (const auto& checker : shard_checkers) {
        dest_checker->MergeFrom(*checker);
      }
    }
  };
  auto find_slot = [&](int replica, int64_t id, double arrival_s) -> size_t {
    auto& index = attempt_index[static_cast<size_t>(replica)];
    const SimResult& result = results[static_cast<size_t>(replica)];
    if (index.empty() && !result.requests.empty()) {
      index.reserve(result.requests.size());
      for (size_t slot = 0; slot < result.requests.size(); ++slot) {
        index[result.requests[slot].id].push_back({result.requests[slot].arrival_s, slot});
      }
    }
    auto it = index.find(id);
    if (it == index.end()) {
      return kNoSlot;
    }
    for (const auto& [attempt_arrival_s, slot] : it->second) {
      if (attempt_arrival_s == arrival_s) {
        return slot;  // Slots ascend per id: same pick as the linear scan.
      }
    }
    return kNoSlot;
  };
  {
    std::vector<int> all(static_cast<size_t>(n));
    std::iota(all.begin(), all.end(), 0);
    simulate_all(all);
  }

  // Each round re-routes every retryable interruption and re-simulates the
  // replicas that received work. Re-simulation only ever adds load, so a
  // previously interrupted attempt stays interrupted and the loop converges:
  // total attempts are capped at num_requests * (max_retries + 1).
  auto run_retry_rounds = [&]() {
    int64_t round_guard =
        static_cast<int64_t>(num_requests) * (options_.max_retries + 1) + 1;
    while (round_guard-- > 0) {
      struct Retry {
        double time;
        size_t index;
      };
      std::vector<Retry> retries;
      for (size_t i = 0; i < num_requests; ++i) {
        if (shed[i] || retry_denied[i] ||
            failure_override[i].first != FailureKind::kNone) {
          continue;
        }
        const Attempt& last = chains[i].back();
        size_t slot = find_slot(last.replica, stamped.requests[i].id, last.arrival_s);
        CHECK_NE(slot, kNoSlot);
        const RequestMetrics& m = results[static_cast<size_t>(last.replica)].requests[slot];
        if (!m.failed() || m.failure != FailureKind::kReplicaCrash) {
          continue;  // Completed, still only timed out, or never failed.
        }
        int used = static_cast<int>(chains[i].size()) - 1;
        if (used >= options_.max_retries) {
          continue;  // Retries exhausted: the crash failure stands.
        }
        // Full jitter (when enabled) decorrelates the retry instants of
        // requests interrupted by the same crash, so survivors do not land on
        // the failover replica as a thundering herd.
        double backoff =
            options_.retry_jitter
                ? FullJitterBackoffS(options_.retry_backoff_s, used,
                                     stamped.requests[i].id, options_.faults.seed)
                : options_.retry_backoff_s * static_cast<double>(int64_t{1} << used);
        double t = NextHealthyTime(m.failed_s + backoff);
        if (t == kInfinity) {
          continue;  // No replica ever recovers: the crash failure stands.
        }
        if (deadline_abs[i] > 0.0 && t >= deadline_abs[i]) {
          failure_override[i] = {FailureKind::kTimeout, deadline_abs[i]};
          continue;  // The client will have given up before the retry lands.
        }
        retries.push_back({t, i});
      }
      if (retries.empty()) {
        break;
      }
      std::sort(retries.begin(), retries.end(), [](const Retry& a, const Retry& b) {
        if (a.time != b.time) {
          return a.time < b.time;
        }
        return a.index < b.index;
      });
      std::set<int> dirty;
      for (const Retry& retry : retries) {
        size_t i = retry.index;
        // Budget check in dispatch (time) order: under a storm the earliest
        // retries drain the bucket and the rest keep their crash failures.
        if (!retry_budget.TryConsume(retry.time)) {
          retry_denied[i] = true;
          ++retries_denied;
          if (dest_tracer != nullptr) {
            dest_tracer->Instant("router", "retry_denied", retry.time,
                                 {Arg("request", stamped.requests[i].id)});
          }
          if (dest_metrics != nullptr) {
            dest_metrics->AddCount("retries_denied", retry.time);
          }
          continue;
        }
        Request attempt = stamped.requests[i];
        attempt.arrival_time_s = retry.time;
        // Distinct round → distinct async-span id, even when the retry lands
        // back on a replica that already traced an attempt of this request.
        attempt.retry_round = static_cast<int64_t>(chains[i].size());
        if (attempt.deadline_s > 0.0) {
          // The client's clock is already running; only the remainder of its
          // current window is available to the retried attempt.
          attempt.deadline_s = deadline_abs[i] - retry.time;
        }
        int pick = Route(attempt.total_tokens(), retry.time, chains[i].back().replica, &router);
        if (pick < 0) {
          continue;  // Every live replica quarantined or down: failure stands.
        }
        if (dest_tracer != nullptr) {
          dest_tracer->Instant("router", "retry", retry.time,
                               {Arg("request", attempt.id),
                                Arg("replica", static_cast<int64_t>(pick))});
        }
        if (dest_metrics != nullptr) {
          dest_metrics->AddCount("retries", retry.time);
        }
        chains[i].push_back({pick, retry.time, false});
        InsertSorted(&sub[static_cast<size_t>(pick)], attempt);
        dirty.insert(pick);
      }
      if (dirty.empty()) {
        break;  // Nothing routable this round; nothing will change.
      }
      simulate_all({dirty.begin(), dirty.end()});
    }
  };
  run_retry_rounds();

  auto deadline_abs_of = [&](size_t i) { return deadline_abs[i]; };
  auto attempt_metrics = [&](const Attempt& attempt, int64_t id) -> const RequestMetrics& {
    size_t slot = find_slot(attempt.replica, id, attempt.arrival_s);
    CHECK_NE(slot, kNoSlot);
    return results[static_cast<size_t>(attempt.replica)].requests[slot];
  };

  // ---- Client timeout-retries (the metastable amplification source) ----
  // A client whose deadline expired re-offers the request after a fixed,
  // deliberately synchronized backoff, with a fresh full deadline. During a
  // capacity dip every timed-out client re-offers at once, the re-offered
  // load times out again, and the cluster locks into serving work that can
  // never finish — metastable overload. The cascade breaker (when enabled)
  // denies re-offers while engaged, which is what breaks the loop.
  int64_t timeout_retries = 0;
  int64_t cascade_retry_denied = 0;
  std::vector<int> timeout_tries(num_requests, 0);
  if (options_.timeout_retry_max > 0) {
    int guard = options_.timeout_retry_max + 1;
    while (guard-- > 0) {
      struct Reoffer {
        double time;
        size_t index;
      };
      std::vector<Reoffer> reoffers;
      for (size_t i = 0; i < num_requests; ++i) {
        if (shed[i] || retry_denied[i] ||
            timeout_tries[i] >= options_.timeout_retry_max) {
          continue;
        }
        // The timeout may be router-decided (failure_override) or observed by
        // the replica attempt itself.
        double failed_at = -1.0;
        if (failure_override[i].first == FailureKind::kTimeout) {
          failed_at = failure_override[i].second;
        } else if (failure_override[i].first != FailureKind::kNone) {
          continue;
        } else {
          const RequestMetrics& m =
              attempt_metrics(chains[i].back(), stamped.requests[i].id);
          if (!m.failed() || m.failure != FailureKind::kTimeout) {
            continue;
          }
          failed_at = m.failed_s;
        }
        reoffers.push_back({failed_at + options_.timeout_retry_backoff_s, i});
      }
      if (reoffers.empty()) {
        break;
      }
      std::sort(reoffers.begin(), reoffers.end(), [](const Reoffer& a, const Reoffer& b) {
        if (a.time != b.time) {
          return a.time < b.time;
        }
        return a.index < b.index;
      });
      std::set<int> dirty;
      for (const Reoffer& re : reoffers) {
        size_t i = re.index;
        ++timeout_tries[i];
        if (options_.cascade.enabled && breaker.EngagedAt(re.time)) {
          ++cascade_retry_denied;  // The timeout stands; the breaker refused.
          if (dest_tracer != nullptr) {
            dest_tracer->Instant("router", "cascade_denied", re.time,
                                 {Arg("request", stamped.requests[i].id)});
          }
          continue;
        }
        bool any_up = false;
        for (int r = 0; r < n; ++r) {
          any_up |= !DownAt(r, re.time) && !PartitionedAt(r, re.time);
        }
        if (!any_up) {
          continue;  // Nothing to re-offer to: the timeout stands.
        }
        Request attempt = stamped.requests[i];
        attempt.arrival_time_s = re.time;
        attempt.retry_round = static_cast<int64_t>(chains[i].size());
        int pick = Route(attempt.total_tokens(), re.time, /*exclude=*/-1, &router);
        if (pick < 0) {
          continue;
        }
        if (attempt.deadline_s > 0.0) {
          // Fresh full window: the client's clock restarts at the re-offer.
          deadline_abs[i] = re.time + stamped.requests[i].deadline_s;
        }
        failure_override[i] = {FailureKind::kNone, -1.0};
        chains[i].push_back({pick, re.time, false});
        InsertSorted(&sub[static_cast<size_t>(pick)], attempt);
        dirty.insert(pick);
        ++timeout_retries;
        if (dest_tracer != nullptr) {
          dest_tracer->Instant("router", "timeout_retry", re.time,
                               {Arg("request", attempt.id),
                                Arg("replica", static_cast<int64_t>(pick))});
        }
        if (dest_metrics != nullptr) {
          dest_metrics->AddCount("timeout_retries", re.time);
        }
      }
      if (dirty.empty()) {
        break;
      }
      simulate_all({dirty.begin(), dirty.end()});
      run_retry_rounds();  // Re-offered attempts can crash like anything else.
    }
  }

  // ---- Degraded failover: drain-and-recompute or live KV migration ----
  int64_t migrations_done = 0;
  int64_t migrations_cancelled = 0;
  int64_t drain_failovers = 0;
  int64_t migrated_kv_bytes = 0;
  if (options_.degraded_failover != FailoverMode::kNone) {
    const bool live_migrate = options_.degraded_failover == FailoverMode::kLiveMigrate;
    // Decide which requests to pull off which replicas. Only decode-phase
    // requests are worth moving (a queued or still-prefilling request holds
    // little KV and is covered by hedging); parallel-sampling parents are
    // left in place (their forked siblings share prompt KV on the source).
    struct Failover {
      size_t index;
      int src;
      double plan_s;
      int dst = -1;
    };
    std::vector<Failover> decisions;
    for (size_t i = 0; i < num_requests; ++i) {
      if (shed[i] || failure_override[i].first != FailureKind::kNone ||
          stamped.requests[i].num_samples > 1) {
        continue;
      }
      const Attempt& att = chains[i].back();
      const RequestMetrics& m = attempt_metrics(att, stamped.requests[i].id);
      if (m.failure == FailureKind::kReplicaCrash || m.token_times_s.empty()) {
        continue;
      }
      double done_t = m.completed() ? m.completion_s : (m.failed() ? m.failed_s : kInfinity);
      double deadline_abs = deadline_abs_of(i);
      for (const DetectedInterval& d : detected_[static_cast<size_t>(att.replica)]) {
        double t_m = std::max(d.begin_s, m.token_times_s.front()) + options_.migration_delay_s;
        if (t_m >= d.end_s || t_m >= done_t) {
          continue;  // Detection cleared, or the request finished first.
        }
        if (deadline_abs > 0.0 && t_m >= deadline_abs) {
          continue;  // The client gives up before the failover lands.
        }
        if (PartitionedAt(att.replica, t_m)) {
          continue;  // No orchestrating a drain/migration through a partition.
        }
        decisions.push_back({i, att.replica, t_m});
        break;
      }
    }
    std::sort(decisions.begin(), decisions.end(), [](const Failover& a, const Failover& b) {
      if (a.plan_s != b.plan_s) {
        return a.plan_s < b.plan_s;
      }
      return a.index < b.index;
    });
    // Quarantine every source before choosing destinations: destinations must
    // never land on a replica whose checkpoint timings the extra load would
    // perturb, and the router stops feeding a replica it is draining anyway.
    for (const Failover& d : decisions) {
      quarantined_[static_cast<size_t>(d.src)] = true;
    }
    std::vector<Failover> accepted;
    std::set<int> dirty_src;
    for (Failover& d : decisions) {
      const Request& original = stamped.requests[d.index];
      int64_t route_tokens = live_migrate ? original.output_tokens : original.total_tokens();
      int pick = Route(route_tokens, d.plan_s, /*exclude=*/d.src, &router);
      if (pick < 0 || pick == d.src) {
        continue;  // Nowhere to move it; the request rides out the slowdown.
      }
      d.dst = pick;
      Request* sub_request = FindSubRequest(&sub[static_cast<size_t>(d.src)], original.id,
                                            chains[d.index].back().arrival_s);
      CHECK(sub_request != nullptr);
      sub_request->planned_abort =
          live_migrate ? PlannedAbort::kMigrateOut : PlannedAbort::kDrain;
      sub_request->planned_abort_s = d.plan_s;
      dirty_src.insert(d.src);
      accepted.push_back(d);
      if (dest_tracer != nullptr) {
        dest_tracer->Instant("router", live_migrate ? "migrate_plan" : "drain_plan", d.plan_s,
                             {Arg("request", original.id),
                              Arg("src", static_cast<int64_t>(d.src)),
                              Arg("dst", static_cast<int64_t>(d.dst))});
      }
    }
    simulate_all({dirty_src.begin(), dirty_src.end()});
    // Read the actual checkpoint outcomes, then build destination attempts.
    // A request that finished before its planned abort fired is a cancelled
    // failover (nothing moved).
    struct Transfer {
      size_t index;
      int dst;
      double failed_s;
      int64_t generated;
    };
    std::vector<Transfer> transfers;
    std::set<int> dirty_dst;
    for (const Failover& d : accepted) {
      const RequestMetrics& sm =
          attempt_metrics(chains[d.index].back(), stamped.requests[d.index].id);
      FailureKind want = live_migrate ? FailureKind::kMigrated : FailureKind::kDegradedDrain;
      if (sm.failure != want) {
        if (live_migrate) {
          ++migrations_cancelled;
        }
        continue;
      }
      double deadline_abs = deadline_abs_of(d.index);
      if (!live_migrate) {
        double t = sm.failed_s;
        if (deadline_abs > 0.0 && t >= deadline_abs) {
          failure_override[d.index] = {FailureKind::kTimeout, deadline_abs};
          continue;
        }
        Request attempt = stamped.requests[d.index];
        attempt.arrival_time_s = t;
        attempt.retry_round = static_cast<int64_t>(chains[d.index].size());
        attempt.num_samples = 1;
        if (attempt.deadline_s > 0.0) {
          attempt.deadline_s = deadline_abs - t;
        }
        chains[d.index].push_back({d.dst, t, false});
        InsertSorted(&sub[static_cast<size_t>(d.dst)], attempt);
        dirty_dst.insert(d.dst);
        ++drain_failovers;
        if (dest_metrics != nullptr) {
          dest_metrics->AddCount("drain_failovers", t);
        }
        continue;
      }
      transfers.push_back({d.index, d.dst, sm.failed_s,
                           static_cast<int64_t>(sm.token_times_s.size())});
    }
    // Serialize KV transfers on the migration link in checkpoint order; the
    // destination adopts the request when its image lands.
    std::sort(transfers.begin(), transfers.end(), [](const Transfer& a, const Transfer& b) {
      if (a.failed_s != b.failed_s) {
        return a.failed_s < b.failed_s;
      }
      return a.index < b.index;
    });
    double link_free = 0.0;
    const int64_t kv_bytes_per_token = options_.replica.model.KvBytesPerToken();
    for (const Transfer& tr : transfers) {
      const Request& original = stamped.requests[tr.index];
      CHECK_GT(tr.generated, 0);  // The checkpoint only fires on decoders.
      if (tr.generated >= original.output_tokens) {
        ++migrations_cancelled;  // Fully generated: nothing left to resume.
        continue;
      }
      int64_t bytes = (original.prompt_tokens + tr.generated - 1) * kv_bytes_per_token;
      double start = std::max(link_free, tr.failed_s);
      double busy = static_cast<double>(bytes) / options_.migration_bandwidth_Bps;
      link_free = start + busy;
      double ready = start + busy + options_.migration_latency_s;
      double deadline_abs = deadline_abs_of(tr.index);
      if (deadline_abs > 0.0 && ready >= deadline_abs) {
        failure_override[tr.index] = {FailureKind::kTimeout, deadline_abs};
        ++migrations_cancelled;
        continue;
      }
      Request attempt = original;
      attempt.arrival_time_s = ready;
      attempt.retry_round = static_cast<int64_t>(chains[tr.index].size());
      attempt.num_samples = 1;
      attempt.restored_generated = tr.generated;
      if (attempt.deadline_s > 0.0) {
        attempt.deadline_s = deadline_abs - ready;
      }
      chains[tr.index].push_back({tr.dst, ready, true});
      InsertSorted(&sub[static_cast<size_t>(tr.dst)], attempt);
      dirty_dst.insert(tr.dst);
      ++migrations_done;
      migrated_kv_bytes += bytes;
      if (dest_tracer != nullptr) {
        dest_tracer->Instant("router", "migrate", ready,
                             {Arg("request", original.id),
                              Arg("dst", static_cast<int64_t>(tr.dst)),
                              Arg("bytes", bytes)});
      }
      if (dest_metrics != nullptr) {
        dest_metrics->AddCount("migrations", ready);
      }
    }
    simulate_all({dirty_dst.begin(), dirty_dst.end()});
    run_retry_rounds();  // Destinations can crash like anything else.
  }

  // ---- Partition redispatch & reconciliation ----
  // A request in flight on a replica that partitions keeps executing there
  // (the far side), but nothing it emits reaches the client until the window
  // heals. Once the prober declares the replica unreachable, the router
  // redispatches a duplicate near-side. At reconciliation exactly one
  // attempt's stream is delivered: whichever completion becomes
  // client-visible first wins (far-side emissions inside the window deliver
  // at the window's end), and the loser is suppressed — cancelled mid-service
  // where a cancel can reach it.
  struct PartitionDup {
    bool issued = false;
    int replica = -1;
    double arrival_s = 0.0;
    double p_begin = 0.0;
    double p_end = 0.0;
  };
  std::vector<PartitionDup> pdups(num_requests);
  int64_t partition_redispatches = 0;
  int64_t partition_reconciled = 0;
  // Client-visible delivery time of an emission from `replica` at time t:
  // deferred to the end of the partition window when inside one.
  auto deliver_time = [&](int replica, double t) {
    for (const ReplicaOutage& window : partition_windows_[static_cast<size_t>(replica)]) {
      if (t < window.down_s) {
        return t;
      }
      if (t < window.up_s) {
        return window.up_s;
      }
    }
    return t;
  };
  {
    std::set<int> dirty;
    for (size_t i = 0; i < num_requests; ++i) {
      if (shed[i] || failure_override[i].first != FailureKind::kNone ||
          stamped.requests[i].num_samples > 1) {
        continue;
      }
      const Attempt& att = chains[i].back();
      if (att.migrated_in || quarantined_[static_cast<size_t>(att.replica)] ||
          partition_windows_[static_cast<size_t>(att.replica)].empty()) {
        continue;
      }
      const RequestMetrics& m = attempt_metrics(att, stamped.requests[i].id);
      if (m.failure == FailureKind::kReplicaCrash) {
        continue;  // The retry machinery owns crash-interrupted attempts.
      }
      double done_t = m.completed() ? m.completion_s : (m.failed() ? m.failed_s : kInfinity);
      for (const ReplicaOutage& w : partition_windows_[static_cast<size_t>(att.replica)]) {
        if (att.arrival_s >= w.down_s) {
          continue;  // Dispatched after the cut; the router never saw it vanish.
        }
        if (done_t <= w.down_s) {
          continue;  // Finished client-visibly before the cut.
        }
        // The router acts when the prober's verdict lands inside the window.
        double td = -1.0;
        for (const DetectedInterval& d : detected_unreachable_[static_cast<size_t>(att.replica)]) {
          if (d.begin_s >= w.down_s && d.begin_s < w.up_s) {
            td = d.begin_s;
            break;
          }
        }
        if (td < 0.0) {
          break;  // Window shorter than the prober's hysteresis: ride it out.
        }
        if (deadline_abs[i] > 0.0 && td >= deadline_abs[i]) {
          break;  // The client gives up before the duplicate could land.
        }
        Request attempt = stamped.requests[i];
        attempt.arrival_time_s = td;
        attempt.retry_round = static_cast<int64_t>(chains[i].size());
        attempt.num_samples = 1;
        if (attempt.deadline_s > 0.0) {
          attempt.deadline_s = deadline_abs[i] - td;
        }
        int pick = Route(attempt.total_tokens(), td, att.replica, &router);
        if (pick < 0 || pick == att.replica) {
          break;  // Nowhere reachable to duplicate onto.
        }
        pdups[i] = {true, pick, td, w.down_s, w.up_s};
        InsertSorted(&sub[static_cast<size_t>(pick)], attempt);
        dirty.insert(pick);
        ++partition_redispatches;
        if (dest_tracer != nullptr) {
          dest_tracer->Instant("router", "partition_redispatch", td,
                               {Arg("request", attempt.id),
                                Arg("replica", static_cast<int64_t>(pick))});
        }
        if (dest_metrics != nullptr) {
          dest_metrics->AddCount("partition_redispatches", td);
        }
        break;
      }
    }
    simulate_all({dirty.begin(), dirty.end()});
    // First-visible-completion-wins: the far attempt's completion counts at
    // its delivery time (deferred past the window). The loser is cancelled —
    // at the winner's visible completion for the near-side loser; no earlier
    // than the window's end for the far-side loser, since the cancel itself
    // cannot cross the partition.
    std::set<int> dirty_cancel;
    for (size_t i = 0; i < num_requests; ++i) {
      if (!pdups[i].issued) {
        continue;
      }
      const Attempt& far = chains[i].back();
      const RequestMetrics& fm = attempt_metrics(far, stamped.requests[i].id);
      Attempt dup_attempt{pdups[i].replica, pdups[i].arrival_s, false};
      const RequestMetrics& dm = attempt_metrics(dup_attempt, stamped.requests[i].id);
      double f_fin = fm.completed() ? deliver_time(far.replica, fm.completion_s) : kInfinity;
      double d_fin = dm.completed() ? dm.completion_s : kInfinity;
      if (f_fin == kInfinity && d_fin == kInfinity) {
        continue;  // Neither attempt ever completes; nothing to suppress.
      }
      bool far_wins = f_fin <= d_fin;  // Ties go to the original attempt.
      double t_win = far_wins ? f_fin : d_fin;
      int loser_replica = far_wins ? pdups[i].replica : far.replica;
      double loser_arrival = far_wins ? pdups[i].arrival_s : far.arrival_s;
      double t_cancel = far_wins ? t_win : std::max(t_win, pdups[i].p_end);
      Request* sub_request = FindSubRequest(&sub[static_cast<size_t>(loser_replica)],
                                            stamped.requests[i].id, loser_arrival);
      CHECK(sub_request != nullptr);
      sub_request->planned_abort = PlannedAbort::kHedgeCancel;
      sub_request->planned_abort_s = t_cancel;
      dirty_cancel.insert(loser_replica);
    }
    simulate_all({dirty_cancel.begin(), dirty_cancel.end()});
  }

  // ---- Hedged dispatch ----
  // A request still unfinished hedge_after_s into its replica's detected
  // degradation is duplicated onto a healthy replica; whichever attempt
  // finishes first wins and the loser is cancelled at the winner's finish.
  // Winners are decided from the pre-cancellation timeline; cancellation only
  // removes load, so the decided winner still finishes by its decided time
  // and the merge re-reads the final metrics either way.
  struct HedgeInfo {
    bool issued = false;
    int replica = -1;
    double arrival_s = 0.0;
  };
  std::vector<HedgeInfo> hedges(num_requests);
  int64_t hedges_issued = 0;
  if (options_.hedge_after_s > 0.0) {
    std::set<int> dirty;
    for (size_t i = 0; i < num_requests; ++i) {
      if (shed[i] || failure_override[i].first != FailureKind::kNone ||
          stamped.requests[i].num_samples > 1) {
        continue;
      }
      const Attempt& att = chains[i].back();
      // Requests on (or migrated off) a quarantined replica are already being
      // handled by the failover path; hedging them too would stamp cancels
      // onto a replica whose checkpoint timings must stay frozen. Requests
      // caught behind a partition are owned by the redispatch path above.
      if (att.migrated_in || quarantined_[static_cast<size_t>(att.replica)] ||
          pdups[i].issued) {
        continue;
      }
      const RequestMetrics& m = attempt_metrics(att, stamped.requests[i].id);
      double done_t = m.completed() ? m.completion_s : (m.failed() ? m.failed_s : kInfinity);
      double deadline_abs = deadline_abs_of(i);
      for (const DetectedInterval& d : detected_[static_cast<size_t>(att.replica)]) {
        double t_h = std::max(d.begin_s, att.arrival_s) + options_.hedge_after_s;
        if (t_h >= d.end_s || t_h >= done_t) {
          continue;  // Detection cleared, or the request finished first.
        }
        if (deadline_abs > 0.0 && t_h >= deadline_abs) {
          continue;
        }
        if (options_.hedge_suppress_outstanding_s > 0.0) {
          // Overload brownout: when every live replica is saturated past the
          // bound, a speculative duplicate only deepens the overload —
          // suppress the hedge and let the primary ride it out.
          AgeOutstanding(&router, t_h);
          double least = kInfinity;
          for (int r = 0; r < n; ++r) {
            if (!DownAt(r, t_h) && !quarantined_[static_cast<size_t>(r)]) {
              least = std::min(least, router.outstanding_tokens[static_cast<size_t>(r)]);
            }
          }
          if (least / service_rate_ > options_.hedge_suppress_outstanding_s) {
            ++hedges_suppressed;
            if (dest_tracer != nullptr) {
              dest_tracer->Instant("router", "hedge_suppressed", t_h,
                                   {Arg("request", stamped.requests[i].id)});
            }
            if (dest_metrics != nullptr) {
              dest_metrics->AddCount("hedges_suppressed", t_h);
            }
            break;
          }
        }
        // A hedge is pure speculation, so its target must be clean: down,
        // partitioned, quarantined, detected-degraded, and detected-
        // unreachable replicas are excluded outright — with no fall-back,
        // unlike regular routing, because a duplicate on a suspect replica is
        // only added load.
        bool have_target = false;
        for (int r = 0; r < n; ++r) {
          if (r == att.replica || DownAt(r, t_h) || PartitionedAt(r, t_h) ||
              quarantined_[static_cast<size_t>(r)] || !ProvisionedAt(r, t_h) ||
              DetectedDegradedAt(r, t_h) || DetectedUnreachableAt(r, t_h)) {
            continue;
          }
          have_target = true;
          break;
        }
        if (!have_target) {
          break;  // No clean alternative to hedge onto.
        }
        int pick = Route(stamped.requests[i].total_tokens(), t_h, att.replica, &router);
        if (pick < 0 || pick == att.replica) {
          break;  // No healthy alternative to hedge onto.
        }
        Request attempt = stamped.requests[i];
        attempt.arrival_time_s = t_h;
        // Hedges sit outside the retry chain but still need a round of their
        // own: chains[i].size() is one past the last chained attempt's round,
        // and no further chain attempt is created after hedging.
        attempt.retry_round = static_cast<int64_t>(chains[i].size());
        attempt.num_samples = 1;
        if (attempt.deadline_s > 0.0) {
          attempt.deadline_s = deadline_abs - t_h;
        }
        hedges[i] = {true, pick, t_h};
        InsertSorted(&sub[static_cast<size_t>(pick)], attempt);
        dirty.insert(pick);
        ++hedges_issued;
        if (dest_tracer != nullptr) {
          dest_tracer->Instant("router", "hedge", t_h,
                               {Arg("request", attempt.id),
                                Arg("replica", static_cast<int64_t>(pick))});
        }
        if (dest_metrics != nullptr) {
          dest_metrics->AddCount("hedges", t_h);
        }
        break;
      }
    }
    simulate_all({dirty.begin(), dirty.end()});
    // First-finisher-wins: cancel the loser at the winner's completion (ties
    // go to the primary). When neither attempt ever completes there is
    // nothing to cancel — both outcomes stand and the merge keeps the
    // primary's failure.
    std::set<int> dirty_cancel;
    for (size_t i = 0; i < num_requests; ++i) {
      if (!hedges[i].issued) {
        continue;
      }
      const Attempt& primary = chains[i].back();
      const RequestMetrics& pm = attempt_metrics(primary, stamped.requests[i].id);
      Attempt hedge_attempt{hedges[i].replica, hedges[i].arrival_s, false};
      const RequestMetrics& hm = attempt_metrics(hedge_attempt, stamped.requests[i].id);
      double p_fin = pm.completed() ? pm.completion_s : kInfinity;
      double h_fin = hm.completed() ? hm.completion_s : kInfinity;
      double t_win;
      int loser_replica;
      double loser_arrival;
      if (h_fin < p_fin) {
        t_win = h_fin;
        loser_replica = primary.replica;
        loser_arrival = primary.arrival_s;
      } else if (p_fin < kInfinity) {
        t_win = p_fin;
        loser_replica = hedges[i].replica;
        loser_arrival = hedges[i].arrival_s;
      } else {
        continue;
      }
      Request* sub_request = FindSubRequest(&sub[static_cast<size_t>(loser_replica)],
                                            stamped.requests[i].id, loser_arrival);
      CHECK(sub_request != nullptr);
      sub_request->planned_abort = PlannedAbort::kHedgeCancel;
      sub_request->planned_abort_s = t_win;
      dirty_cancel.insert(loser_replica);
    }
    simulate_all({dirty_cancel.begin(), dirty_cancel.end()});
  }

  // ---- Merge ----
  SimResult merged;
  merged.scheduler_name = results[0].scheduler_name + " x" + std::to_string(n) + " (" +
                          std::string(RoutingPolicyName(options_.routing)) + ")";
  merged.requests.resize(num_requests);
  std::vector<std::vector<bool>> consumed(static_cast<size_t>(n));
  for (int r = 0; r < n; ++r) {
    consumed[static_cast<size_t>(r)].assign(results[static_cast<size_t>(r)].requests.size(),
                                            false);
  }

  int64_t lost_tokens = 0;
  for (size_t i = 0; i < num_requests; ++i) {
    const Request& original = stamped.requests[i];
    if (shed[i]) {
      RequestMetrics m;
      m.id = original.id;
      m.qos = original.qos;
      m.arrival_s = original.arrival_time_s;
      m.deadline_s = original.deadline_s;
      m.failed_s = original.arrival_time_s;
      m.failure = FailureKind::kShed;
      merged.requests[i] = m;
      ++merged.num_shed;
      continue;
    }
    const auto& chain = chains[i];
    // Walk the attempt chain reconstructing the client-visible token stream.
    // `carried` holds tokens the client already consumed from attempts whose
    // service was preserved across a hop: a live migration's destination
    // resumes after them (all its tokens are fresh), a drain's destination
    // re-emits them (the duplicates are dropped client-side and counted
    // lost). A crash hop restarts the stream — everything so far is lost,
    // matching the plain retry semantics.
    std::vector<double> carried;
    std::vector<double> fresh;
    int64_t emitted = 0;
    int64_t wasted = 0;
    int64_t cached = 0;
    int64_t crash_retries = 0;
    int64_t num_migrated_in = 0;
    double first_sched = -1.0;
    const RequestMetrics* final_attempt = nullptr;
    int final_replica = chain.back().replica;
    for (size_t a = 0; a < chain.size(); ++a) {
      SimResult& replica_result = results[static_cast<size_t>(chain[a].replica)];
      size_t slot = find_slot(chain[a].replica, original.id, chain[a].arrival_s);
      CHECK_NE(slot, kNoSlot);
      consumed[static_cast<size_t>(chain[a].replica)][slot] = true;
      const RequestMetrics& am = replica_result.requests[slot];
      emitted += static_cast<int64_t>(am.token_times_s.size());
      wasted += am.wasted_tokens;
      cached += am.cached_prefill_tokens;
      if (am.failure == FailureKind::kHedgeCancelled) {
        ++merged.hedges_cancelled;
      }
      if (first_sched < 0.0) {
        first_sched = am.first_scheduled_s;
      }
      if (chain[a].migrated_in) {
        ++num_migrated_in;
        fresh = am.token_times_s;  // Resumed past `carried`: all fresh.
      } else {
        size_t drop = std::min(carried.size(), am.token_times_s.size());
        fresh.assign(am.token_times_s.begin() + static_cast<long>(drop),
                     am.token_times_s.end());
      }
      // Far-side emissions inside a partition window only become
      // client-visible when the window heals.
      if (!partition_windows_[static_cast<size_t>(chain[a].replica)].empty()) {
        for (double& t : fresh) {
          t = deliver_time(chain[a].replica, t);
        }
      }
      if (a + 1 < chain.size()) {
        bool preserved =
            (am.failure == FailureKind::kMigrated && chain[a + 1].migrated_in) ||
            am.failure == FailureKind::kDegradedDrain;
        if (preserved) {
          carried.insert(carried.end(), fresh.begin(), fresh.end());
        } else {
          carried.clear();  // Crash hop: the retry restarts the stream.
          first_sched = -1.0;
          if (am.failure != FailureKind::kTimeout) {
            // Timeout hops are client re-offers, counted in timeout_retries.
            ++crash_retries;
          }
        }
      } else {
        final_attempt = &am;
      }
    }
    std::vector<double> stream = carried;
    stream.insert(stream.end(), fresh.begin(), fresh.end());
    // Hedge resolution, from the final simulated data (re-simulation after
    // cancellation can only move completions earlier, so the decided winner
    // may even have improved — whichever attempt actually finished first is
    // the one the client was served from).
    int64_t hedged = 0;
    if (hedges[i].issued) {
      hedged = 1;
      SimResult& hedge_result = results[static_cast<size_t>(hedges[i].replica)];
      size_t hslot = find_slot(hedges[i].replica, original.id, hedges[i].arrival_s);
      CHECK_NE(hslot, kNoSlot);
      consumed[static_cast<size_t>(hedges[i].replica)][hslot] = true;
      const RequestMetrics& hm = hedge_result.requests[hslot];
      emitted += static_cast<int64_t>(hm.token_times_s.size());
      wasted += hm.wasted_tokens;
      cached += hm.cached_prefill_tokens;
      if (hm.failure == FailureKind::kHedgeCancelled) {
        ++merged.hedges_cancelled;
      }
      double p_fin = final_attempt->completed()
                         ? deliver_time(final_replica, final_attempt->completion_s)
                         : kInfinity;
      double h_fin =
          hm.completed() ? deliver_time(hedges[i].replica, hm.completion_s) : kInfinity;
      if (h_fin < p_fin) {
        ++merged.hedges_won;
        size_t drop = std::min(carried.size(), hm.token_times_s.size());
        stream = carried;
        for (size_t k = drop; k < hm.token_times_s.size(); ++k) {
          stream.push_back(deliver_time(hedges[i].replica, hm.token_times_s[k]));
        }
        if (carried.empty()) {
          first_sched = hm.first_scheduled_s;
        }
        final_attempt = &hm;
        final_replica = hedges[i].replica;
      }
    }
    // Partition reconciliation: pick the client-visible winner between the
    // far (partitioned) attempt and its near-side duplicate, deliver exactly
    // one stream, and audit the outcome against partition_conservation.
    if (pdups[i].issued) {
      SimResult& dup_result = results[static_cast<size_t>(pdups[i].replica)];
      size_t dslot = find_slot(pdups[i].replica, original.id, pdups[i].arrival_s);
      CHECK_NE(dslot, kNoSlot);
      consumed[static_cast<size_t>(pdups[i].replica)][dslot] = true;
      const RequestMetrics& dm = dup_result.requests[dslot];
      emitted += static_cast<int64_t>(dm.token_times_s.size());
      wasted += dm.wasted_tokens;
      cached += dm.cached_prefill_tokens;
      double f_fin = final_attempt->completed()
                         ? deliver_time(final_replica, final_attempt->completion_s)
                         : kInfinity;
      double d_fin =
          dm.completed() ? deliver_time(pdups[i].replica, dm.completion_s) : kInfinity;
      if (f_fin < kInfinity || d_fin < kInfinity) {
        bool far_wins = f_fin <= d_fin;  // Ties go to the original attempt.
        const RequestMetrics* loser = far_wins ? &dm : final_attempt;
        if (!far_wins) {
          size_t drop = std::min(carried.size(), dm.token_times_s.size());
          stream = carried;
          for (size_t k = drop; k < dm.token_times_s.size(); ++k) {
            stream.push_back(deliver_time(pdups[i].replica, dm.token_times_s[k]));
          }
          if (carried.empty()) {
            first_sched = dm.first_scheduled_s;
          }
          final_attempt = &dm;
          final_replica = pdups[i].replica;
        }
        ++partition_reconciled;
        if (options_.replica.checker != nullptr) {
          PartitionReconcile rec;
          rec.request_id = original.id;
          rec.partition_begin_s = pdups[i].p_begin;
          rec.partition_end_s = pdups[i].p_end;
          rec.winner_far = far_wins;
          rec.winner_token_times_s = stream;
          rec.winner_completion_s = far_wins ? f_fin : d_fin;
          rec.delivered_token_times_s = stream;
          rec.delivered_completion_s = rec.winner_completion_s;
          // Client-side suppression: once a winner is delivered, the losing
          // completion never reaches the client, whether or not the cancel
          // caught the loser mid-service.
          rec.loser_suppressed = true;
          rec.loser_completed = loser->completed();
          rec.output_tokens = original.output_tokens;
          options_.replica.checker->CheckPartitionReconcile(rec);
        }
      }
    }
    RequestMetrics m = *final_attempt;
    m.token_times_s = stream;
    if (m.completed()) {
      m.completion_s = deliver_time(final_replica, m.completion_s);
    }
    // Latency metrics measure from the client's original arrival, covering
    // every failed attempt, backoff wait, and migration transfer.
    m.arrival_s = original.arrival_time_s;
    m.deadline_s = original.deadline_s;
    if (original.deadline_s > 0.0 &&
        deadline_abs[i] > original.arrival_time_s + original.deadline_s) {
      // Client timeout-retries restarted the clock; goodput judges against
      // the final re-offer's window.
      m.deadline_s = deadline_abs[i] - original.arrival_time_s;
    }
    m.first_scheduled_s = first_sched;
    m.retries = crash_retries;
    m.migrations = num_migrated_in;
    m.hedges = hedged;
    m.wasted_tokens = wasted;
    // Every attempt's cache-served prefill was real reuse on its replica.
    m.cached_prefill_tokens = cached;
    if (failure_override[i].first != FailureKind::kNone) {
      m.failure = failure_override[i].first;
      m.failed_s = failure_override[i].second;
    }
    lost_tokens += emitted - static_cast<int64_t>(stream.size());
    merged.requests[i] = m;
  }
  // Forked siblings (parallel sampling) belong to no routing chain; append
  // them so their tokens and TBT samples stay in the merged metrics.
  for (int r = 0; r < n; ++r) {
    const SimResult& result = results[static_cast<size_t>(r)];
    for (size_t slot = 0; slot < result.requests.size(); ++slot) {
      if (!consumed[static_cast<size_t>(r)][slot]) {
        merged.requests.push_back(result.requests[slot]);
      }
    }
  }

  for (int r = 0; r < n; ++r) {
    const SimResult& result = results[static_cast<size_t>(r)];
    merged.num_iterations += result.num_iterations;
    merged.num_preemptions += result.num_preemptions;
    merged.makespan_s = std::max(merged.makespan_s, result.makespan_s);
    merged.active_window_s = std::max(merged.active_window_s, result.active_window_s);
    merged.total_output_tokens += result.total_output_tokens;
    merged.total_prefill_tokens += result.total_prefill_tokens;
    merged.total_flops += result.total_flops;
    merged.peak_flops += result.peak_flops;
    merged.total_bytes += result.total_bytes;
    merged.peak_bandwidth += result.peak_bandwidth;
    merged.stage_busy_s.insert(merged.stage_busy_s.end(), result.stage_busy_s.begin(),
                               result.stage_busy_s.end());
    merged.num_outages += result.num_outages;
    merged.downtime_s += result.downtime_s;
    merged.replica_downtime_s.push_back(result.downtime_s);
    merged.peak_kv_blocks += result.peak_kv_blocks;
    merged.total_kv_blocks += result.total_kv_blocks;
    merged.prefix_lookups += result.prefix_lookups;
    merged.prefix_hits += result.prefix_hits;
    merged.cached_prefill_tokens += result.cached_prefill_tokens;
    merged.prefix_evictions += result.prefix_evictions;
    merged.peak_cached_blocks += result.peak_cached_blocks;
    merged.num_slowdown_episodes += result.num_slowdown_episodes;
    merged.degraded_s += result.degraded_s;
    merged.degraded_iterations += result.degraded_iterations;
    merged.num_shed_admission += result.num_shed_admission;
    merged.num_shed_queue += result.num_shed_queue;
    merged.num_browned_out += result.num_browned_out;
    merged.overload_transitions += result.overload_transitions;
    if (dest_tracer != nullptr && replica_tracers[static_cast<size_t>(r)] != nullptr) {
      dest_tracer->Append(*replica_tracers[static_cast<size_t>(r)]);
    }
    if (dest_metrics != nullptr && replica_metrics[static_cast<size_t>(r)] != nullptr) {
      dest_metrics->MergeFrom(*replica_metrics[static_cast<size_t>(r)]);
    }
  }
  merged.total_output_tokens -= lost_tokens;
  merged.lost_output_tokens = lost_tokens;
  merged.probe_transitions = static_cast<int64_t>(prober.transitions().size());
  merged.hedges_issued = hedges_issued;
  merged.migrations = migrations_done;
  merged.migrations_cancelled = migrations_cancelled;
  merged.drain_failovers = drain_failovers;
  merged.migrated_kv_bytes = migrated_kv_bytes;
  merged.num_retries_denied = retries_denied;
  merged.num_hedges_suppressed = hedges_suppressed;
  merged.num_backpressure_skips = backpressure_skips_;
  for (const DomainStatus& status : domain_status) {
    merged.num_domain_faults += status.crashes + status.partitions;
    merged.num_partitions += status.partitions;
  }
  for (int r = 0; r < n; ++r) {
    for (const ReplicaOutage& window : partition_windows_[static_cast<size_t>(r)]) {
      merged.partitioned_s += std::min(window.up_s, horizon) - window.down_s;
    }
  }
  merged.partition_redispatches = partition_redispatches;
  merged.partition_reconciled = partition_reconciled;
  merged.cascade_sheds =
      (options_.cascade.enabled ? breaker.sheds() : 0) + cascade_retry_denied;
  merged.cascade_engaged_s = options_.cascade.enabled ? breaker.engaged_duration_s() : 0.0;
  merged.slow_start_admits = slow_start_admits_;
  merged.timeout_retries = timeout_retries;
  merged.domains = domain_status;
  if (autoscale_active_) {
    merged.autoscale_out = autoscale_out;
    merged.autoscale_in = autoscale_in;
    merged.autoscale_events = autoscale_out + autoscale_in;
    merged.peak_provisioned_replicas = peak_provisioned;
    // Replica-seconds provisioned: still-open windows run to the end of the
    // merged timeline. The GPU-seconds proxy scales by the per-replica GPU
    // count — the number an operator's bill actually tracks.
    double end_s = std::max(merged.makespan_s, last_arrival);
    double provisioned_s = 0.0;
    for (int r = 0; r < n; ++r) {
      for (const ProvisionWindow& window : provision_windows_[static_cast<size_t>(r)]) {
        double to_s = std::min(window.to_s, end_s);
        provisioned_s += std::max(0.0, to_s - std::min(window.from_s, end_s));
      }
    }
    merged.replica_seconds_provisioned = provisioned_s;
    merged.autoscale_cost_gpu_s =
        provisioned_s * static_cast<double>(options_.replica.parallel.num_gpus());
  }

  // ---- Post-hoc flight / SLO replay ----
  // Only the merged result is the client-visible timeline, so the shared
  // sinks are fed here, in global time order, once per Run.
  if (flight != nullptr) {
    enum ReplayKind {
      kArrival,
      kCompletion,
      kFailure,
      kProbe,
      kCrash,
      kRecover,
      kPartitionBegin,
      kPartitionEnd,
      kCascade,
      kCascadeClear
    };
    struct FlightReplay {
      double t;
      ReplayKind kind;
      int pid;
      int64_t id;
      double value;
    };
    std::vector<FlightReplay> replay;
    for (const RequestMetrics& m : merged.requests) {
      replay.push_back({m.arrival_s, kArrival, n, m.id, 0.0});
      if (m.completed()) {
        replay.push_back({m.completion_s, kCompletion, n, m.id, m.completion_s - m.arrival_s});
      } else if (m.failed()) {
        replay.push_back(
            {m.failed_s, kFailure, n, m.id, static_cast<double>(static_cast<int>(m.failure))});
      }
    }
    for (const HealthTransition& tr : prober.transitions()) {
      replay.push_back({tr.time_s, kProbe, tr.replica, static_cast<int64_t>(tr.to), 0.0});
    }
    for (int r = 0; r < n; ++r) {
      for (const ReplicaOutage& outage : outage_schedules_[static_cast<size_t>(r)]) {
        if (outage.down_s > merged.makespan_s) {
          continue;
        }
        replay.push_back({outage.down_s, kCrash, r, 0, 0.0});
        replay.push_back({outage.up_s, kRecover, r, 0, 0.0});
      }
      for (const ReplicaOutage& window : partition_windows_[static_cast<size_t>(r)]) {
        if (window.down_s > merged.makespan_s) {
          continue;
        }
        replay.push_back({window.down_s, kPartitionBegin, r, 0, 0.0});
        replay.push_back({window.up_s, kPartitionEnd, r, 0, 0.0});
      }
    }
    for (const CascadeInterval& interval : cascade_engaged_) {
      if (interval.begin_s > merged.makespan_s) {
        continue;
      }
      replay.push_back({interval.begin_s, kCascade, n, 0, 0.0});
      replay.push_back({interval.end_s, kCascadeClear, n, 0, 0.0});
    }
    std::stable_sort(replay.begin(), replay.end(),
                     [](const FlightReplay& a, const FlightReplay& b) { return a.t < b.t; });
    for (const FlightReplay& e : replay) {
      switch (e.kind) {
        case kArrival:
          flight->RecordInstant("request", "arrival", e.t, e.pid,
                                {{"request", static_cast<double>(e.id)}});
          break;
        case kCompletion:
          flight->RecordInstant("request", "completion", e.t, e.pid,
                                {{"request", static_cast<double>(e.id)}, {"latency_s", e.value}});
          break;
        case kFailure:
          flight->RecordInstant("fault", "failure", e.t, e.pid,
                                {{"request", static_cast<double>(e.id)}, {"failure", e.value}});
          break;
        case kProbe:
          flight->RecordInstant("router", "probe_transition", e.t, e.pid,
                                {{"health", static_cast<double>(e.id)}});
          break;
        case kCrash:
          flight->Trigger("replica_crash", e.t, e.pid);
          break;
        case kRecover:
          flight->RecordInstant("fault", "recovered", e.t, e.pid);
          break;
        case kPartitionBegin:
          flight->RecordInstant("fault", "partition", e.t, e.pid);
          break;
        case kPartitionEnd:
          flight->RecordInstant("fault", "rejoined", e.t, e.pid);
          break;
        case kCascade:
          // A detected cascade is exactly the post-mortem a flight recorder
          // exists for: dump the ring on the first engagement.
          flight->Trigger("cascade_detected", e.t, e.pid);
          break;
        case kCascadeClear:
          flight->RecordInstant("router", "cascade_cleared", e.t, e.pid);
          break;
      }
    }
  }
  ReplaySloFromResult(merged, slo);
  return merged;
}

}  // namespace sarathi
