#include "src/simulator/cluster_simulator.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <set>
#include <utility>

#include "src/common/logging.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/obs_hooks.h"
#include "src/robustness/retry_budget.h"
#include "src/simulator/telemetry.h"

namespace sarathi {
namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();
constexpr size_t kNoSlot = static_cast<size_t>(-1);

// Inserts `request` keeping the sub-trace sorted by arrival time; among equal
// arrivals the new request goes last (stable).
void InsertSorted(Trace* trace, const Request& request) {
  auto it = std::upper_bound(trace->requests.begin(), trace->requests.end(),
                             request.arrival_time_s,
                             [](double t, const Request& r) { return t < r.arrival_time_s; });
  trace->requests.insert(it, request);
}

// Metrics slot of the service attempt with this id and attempt arrival time
// (an id can appear several times on one replica if retries return to it).
size_t FindAttemptSlot(const SimResult& result, int64_t id, double arrival_s) {
  for (size_t i = 0; i < result.requests.size(); ++i) {
    if (result.requests[i].id == id && result.requests[i].arrival_s == arrival_s) {
      return i;
    }
  }
  return kNoSlot;
}

// Sub-trace request of the service attempt with this id and arrival time, for
// stamping planned aborts (migration checkpoints, drains, hedge cancels).
Request* FindSubRequest(Trace* trace, int64_t id, double arrival_s) {
  for (Request& r : trace->requests) {
    if (r.id == id && r.arrival_time_s == arrival_s) {
      return &r;
    }
  }
  return nullptr;
}

}  // namespace

std::string_view RoutingPolicyName(RoutingPolicy policy) {
  switch (policy) {
    case RoutingPolicy::kRoundRobin:
      return "round_robin";
    case RoutingPolicy::kLeastOutstandingWork:
      return "least_outstanding_work";
  }
  return "unknown";
}

std::string_view FailoverModeName(FailoverMode mode) {
  switch (mode) {
    case FailoverMode::kNone:
      return "none";
    case FailoverMode::kRecompute:
      return "recompute";
    case FailoverMode::kLiveMigrate:
      return "live_migrate";
  }
  return "unknown";
}

ClusterSimulator::ClusterSimulator(const ClusterOptions& options) : options_(options) {
  CHECK_GE(options_.num_replicas, 1);
  CHECK_GE(options_.max_retries, 0);
  CHECK_GT(options_.retry_backoff_s, 0.0);
  CHECK_GT(options_.migration_bandwidth_Bps, 0.0);
  CHECK_GE(options_.migration_latency_s, 0.0);
  CHECK_GE(options_.migration_delay_s, 0.0);
  // Built once and shared with every replica simulation (always serial within
  // a cluster run), so probes and retry rounds reuse one memo cache instead
  // of reconstructing a model each time.
  cost_model_ = options_.replica.cost_model;
  if (cost_model_ == nullptr) {
    cost_model_ = std::make_shared<IterationCostModel>(
        options_.replica.model, options_.replica.cluster, options_.replica.parallel);
  }
  if (options_.estimated_tokens_per_s > 0.0) {
    service_rate_ = options_.estimated_tokens_per_s;
  } else {
    // Default estimate: tokens a budget-sized hybrid iteration retires per
    // second, from the replica's cost model, derated for decode-phase
    // inefficiency (a request's decode tokens drain far slower than its
    // prefill tokens). Overestimating the drain would zero every replica's
    // outstanding count and blind the balancer.
    BatchWork probe;
    probe.sequences.push_back(SequenceWork::PrefillChunk(1024, 512));
    double iteration = cost_model_->IterationCost(probe).Total();
    service_rate_ = 0.4 * 512.0 / std::max(iteration, 1e-9);
  }
}

bool ClusterSimulator::DownAt(int replica, double t) const {
  for (const ReplicaOutage& outage : outage_schedules_[static_cast<size_t>(replica)]) {
    if (t < outage.down_s) {
      return false;
    }
    if (t < outage.up_s) {
      return true;
    }
  }
  return false;
}

double ClusterSimulator::SlowdownFactorAt(int replica, double t) const {
  for (const SlowdownEpisode& episode : slowdown_schedules_[static_cast<size_t>(replica)]) {
    if (t < episode.start_s) {
      return 1.0;
    }
    if (t < episode.end_s) {
      return episode.factor;
    }
  }
  return 1.0;
}

bool ClusterSimulator::DetectedDegradedAt(int replica, double t) const {
  for (const DetectedInterval& interval : detected_[static_cast<size_t>(replica)]) {
    if (t >= interval.begin_s && t < interval.end_s) {
      return true;
    }
  }
  return false;
}

double ClusterSimulator::NextHealthyTime(double t) const {
  double earliest_up = kInfinity;
  for (int r = 0; r < options_.num_replicas; ++r) {
    if (!DownAt(r, t)) {
      return t;
    }
    for (const ReplicaOutage& outage : outage_schedules_[static_cast<size_t>(r)]) {
      if (t >= outage.down_s && t < outage.up_s) {
        earliest_up = std::min(earliest_up, outage.up_s);
        break;
      }
    }
  }
  return earliest_up;
}

void ClusterSimulator::AgeOutstanding(RouterState* state, double now) const {
  for (int i = 0; i < options_.num_replicas; ++i) {
    auto& last = state->last_update[static_cast<size_t>(i)];
    if (last >= now) {
      continue;  // Out-of-order retry timestamps never rewind the estimate.
    }
    auto& tokens = state->outstanding_tokens[static_cast<size_t>(i)];
    tokens = std::max(0.0, tokens - (now - last) * service_rate_);
    last = now;
  }
}

int ClusterSimulator::Route(int64_t tokens, double now, int exclude,
                            RouterState* state) {
  const int n = options_.num_replicas;
  int num_live = 0;       // Up and not quarantined.
  int num_preferred = 0;  // Live and not detected degraded.
  for (int r = 0; r < n; ++r) {
    bool live = !DownAt(r, now) && !quarantined_[static_cast<size_t>(r)];
    num_live += live ? 1 : 0;
    num_preferred += (live && !DetectedDegradedAt(r, now)) ? 1 : 0;
  }
  if (num_live == 0) {
    return -1;
  }
  auto live = [&](int r) {
    return !DownAt(r, now) && !quarantined_[static_cast<size_t>(r)];
  };
  // Circuit breaker: when any live replica is not detected degraded, restrict
  // the choice to those; otherwise fall back to whatever is live.
  bool prefer = options_.avoid_degraded && num_preferred > 0;
  // Avoid the replica that just failed the request — unless it is the only
  // eligible one standing.
  int num_eligible = prefer ? num_preferred : num_live;
  bool avoid = exclude >= 0 && !(num_eligible == 1 && live(exclude) &&
                                 (!prefer || !DetectedDegradedAt(exclude, now)));
  auto eligible = [&](int r) {
    return live(r) && !(prefer && DetectedDegradedAt(r, now)) && !(avoid && r == exclude);
  };
  // Backpressure propagation: a replica whose estimated outstanding work
  // exceeds the bound has a standing queue; while any eligible replica is
  // under the bound, restrict the choice to those. When every eligible
  // replica is over the bound, backpressure cannot help and routing falls
  // back to plain least-loaded (shedding is the admission layer's job).
  bool shun_pressured = false;
  auto pressured = [&](int r) {
    return state->outstanding_tokens[static_cast<size_t>(r)] >
           options_.backpressure_queue_s * service_rate_;
  };
  if (options_.backpressure_queue_s > 0.0) {
    AgeOutstanding(state, now);
    int num_unpressured = 0;
    int num_allowed = 0;
    for (int r = 0; r < n; ++r) {
      if (!eligible(r)) {
        continue;
      }
      ++num_allowed;
      num_unpressured += pressured(r) ? 0 : 1;
    }
    if (num_unpressured > 0 && num_unpressured < num_allowed) {
      shun_pressured = true;
      ++backpressure_skips_;
    }
  }
  auto allowed = [&](int r) { return eligible(r) && !(shun_pressured && pressured(r)); };

  int pick = -1;
  if (options_.routing == RoutingPolicy::kRoundRobin) {
    for (int k = 0; k < n; ++k) {
      int r = (state->rr_cursor + k) % n;
      if (allowed(r)) {
        pick = r;
        break;
      }
    }
  } else {
    // Age each replica's outstanding estimate, then pick the least loaded.
    // The scan starts at a rotating offset so drained (all-zero) states
    // degrade to round-robin instead of pinning replica 0.
    AgeOutstanding(state, now);
    for (int k = 0; k < n; ++k) {
      int r = (state->rr_cursor + k) % n;
      if (!allowed(r)) {
        continue;
      }
      if (pick < 0 || state->outstanding_tokens[static_cast<size_t>(r)] <
                          state->outstanding_tokens[static_cast<size_t>(pick)]) {
        pick = r;
      }
    }
  }
  state->rr_cursor = (state->rr_cursor + 1) % n;
  if (pick < 0) {
    return -1;  // Everything live was excluded.
  }
  state->outstanding_tokens[static_cast<size_t>(pick)] += static_cast<double>(tokens);
  return pick;
}

SimResult ClusterSimulator::Run(const Trace& trace) {
  const int n = options_.num_replicas;
  const size_t num_requests = trace.size();

  FaultInjector injector(options_.faults);
  Trace stamped = trace;
  injector.ApplyTimeouts(&stamped);

  double last_arrival = 0.0;
  int64_t trace_tokens = 0;
  for (const Request& r : stamped.requests) {
    last_arrival = std::max(last_arrival, r.arrival_time_s);
    trace_tokens += r.total_tokens();
  }
  double horizon = options_.fault_horizon_s;
  if (horizon <= 0.0) {
    // Cover the arrival span plus a generous multiple of the estimated drain.
    horizon = last_arrival + 60.0 +
              4.0 * static_cast<double>(trace_tokens) / (service_rate_ * n);
  }
  outage_schedules_.assign(static_cast<size_t>(n), {});
  slowdown_schedules_.assign(static_cast<size_t>(n), {});
  for (int r = 0; r < n; ++r) {
    outage_schedules_[static_cast<size_t>(r)] = injector.OutagesFor(r, horizon);
    if (!options_.slowdown_overrides.empty()) {
      if (static_cast<size_t>(r) < options_.slowdown_overrides.size()) {
        slowdown_schedules_[static_cast<size_t>(r)] =
            options_.slowdown_overrides[static_cast<size_t>(r)];
      }
    } else {
      slowdown_schedules_[static_cast<size_t>(r)] = injector.SlowdownsFor(r, horizon);
    }
  }
  quarantined_.assign(static_cast<size_t>(n), false);

  // ---- Health probing ----
  // The prober replays the fault schedules (ground truth the replicas will
  // execute) on its fixed cadence before any simulation: detection intervals
  // are a pure function of the schedules, with realistic lag from EWMA
  // warm-up and hysteresis, and are then consulted by every routing decision
  // at that decision's own timestamp — no oracle.
  detected_.assign(static_cast<size_t>(n), {});
  HealthProber prober(n, options_.prober);
  bool any_signal = false;
  for (int r = 0; r < n; ++r) {
    any_signal |= !outage_schedules_[static_cast<size_t>(r)].empty() ||
                  !slowdown_schedules_[static_cast<size_t>(r)].empty();
  }
  if (any_signal) {
    for (double t = options_.prober.probe_interval_s; t <= horizon;
         t += options_.prober.probe_interval_s) {
      for (int r = 0; r < n; ++r) {
        if (DownAt(r, t)) {
          prober.MarkDown(r, t);
        } else {
          prober.Observe(r, t, SlowdownFactorAt(r, t));
        }
      }
    }
    for (int r = 0; r < n; ++r) {
      detected_[static_cast<size_t>(r)] = prober.DegradedIntervals(r);
    }
  }

  // ---- Observability ----
  // Retry rounds re-simulate replicas from scratch; a shared tracer would
  // accumulate duplicate events from the discarded rounds. Instead every
  // simulate() call starts that replica on a fresh tracer/registry (replacing
  // the previous round's), and the final per-replica state merges into the
  // caller's sinks at the end of Run. Router-level events (sheds, retries,
  // health transitions, failovers, hedges) are recorded directly into the
  // destination tracer as process `n`.
  Tracer* dest_tracer =
      options_.replica.tracer != nullptr && options_.replica.tracer->enabled()
          ? options_.replica.tracer
          : nullptr;
  MetricsRegistry* dest_metrics = options_.replica.metrics;
  // The flight recorder and SLO monitor get the merged, client-visible
  // timeline replayed post-hoc (end of Run) rather than the per-round replica
  // feeds, which would double-count every re-simulated attempt and fire
  // triggers for rounds that were discarded.
  FlightRecorder* flight = options_.replica.flight;
  SloMonitor* slo = options_.replica.slo;
  ObsHooks router_obs;
  router_obs.tracer = dest_tracer;
  router_obs.metrics = dest_metrics;
  std::vector<std::unique_ptr<Tracer>> replica_tracers(static_cast<size_t>(n));
  std::vector<std::unique_ptr<MetricsRegistry>> replica_metrics(static_cast<size_t>(n));
  if (dest_tracer != nullptr) {
    dest_tracer->set_default_pid(n);
    dest_tracer->SetProcessName(n, "router");
    for (const HealthTransition& tr : prober.transitions()) {
      dest_tracer->Instant("router", std::string(ReplicaHealthName(tr.to)), tr.time_s,
                           {Arg("replica", static_cast<int64_t>(tr.replica))});
    }
  }
  if (dest_metrics != nullptr) {
    for (const HealthTransition& tr : prober.transitions()) {
      dest_metrics->AddCount("probe_transitions", tr.time_s);
    }
  }

  // ---- Initial routing (health-aware, with admission control) ----
  std::vector<Trace> sub(static_cast<size_t>(n));
  for (Trace& s : sub) {
    s.name = trace.name;
  }
  assignment_.assign(num_requests, -1);
  // Service-attempt history per trace request: (replica, attempt arrival).
  // migrated_in marks attempts that resumed from transferred KV.
  struct Attempt {
    int replica;
    double arrival_s;
    bool migrated_in = false;
  };
  std::vector<std::vector<Attempt>> chains(num_requests);
  std::vector<bool> shed(num_requests, false);
  // Router-decided final failures: a retry whose remaining deadline had
  // already expired is recorded as a timeout, not retried.
  std::vector<std::pair<FailureKind, double>> failure_override(
      num_requests, {FailureKind::kNone, -1.0});

  RouterState router;
  router.outstanding_tokens.assign(static_cast<size_t>(n), 0.0);
  router.last_update.assign(static_cast<size_t>(n), 0.0);
  backpressure_skips_ = 0;

  // Token-bucket retry budget (overload control): credited by initial
  // routing, spent by crash retries. A request denied a token never re-asks —
  // its crash failure stands — so denials are bounded by the request count.
  RetryBudget retry_budget(options_.retry_budget_ratio, options_.retry_budget_burst);
  if (router_obs.active()) {
    retry_budget.set_obs(&router_obs);
  }
  std::vector<bool> retry_denied(num_requests, false);
  int64_t retries_denied = 0;
  int64_t hedges_suppressed = 0;

  for (size_t i = 0; i < num_requests; ++i) {
    const Request& request = stamped.requests[i];
    double t = request.arrival_time_s;
    bool any_up = false;
    for (int r = 0; r < n; ++r) {
      any_up |= !DownAt(r, t);
    }
    auto record_shed = [&](const char* reason) {
      if (dest_tracer != nullptr) {
        dest_tracer->Instant("router", "shed", t,
                             {Arg("request", request.id), Arg("reason", reason)});
      }
      if (dest_metrics != nullptr) {
        dest_metrics->AddCount("shed", t);
      }
    };
    if (!any_up) {
      shed[i] = true;  // Whole cluster down: reject immediately.
      record_shed("cluster_down");
      continue;
    }
    if (options_.shed_outstanding_s > 0.0) {
      AgeOutstanding(&router, t);
      double least = kInfinity;
      for (int r = 0; r < n; ++r) {
        if (!DownAt(r, t)) {
          least = std::min(least, router.outstanding_tokens[static_cast<size_t>(r)]);
        }
      }
      if (least / service_rate_ > options_.shed_outstanding_s) {
        shed[i] = true;
        record_shed("overload");
        continue;
      }
    }
    int pick = Route(request.total_tokens(), t, /*exclude=*/-1, &router);
    CHECK_GE(pick, 0);  // Quarantine is empty during initial routing.
    assignment_[i] = pick;
    chains[i].push_back({pick, t, false});
    retry_budget.OnRequest(t);
    InsertSorted(&sub[static_cast<size_t>(pick)], request);
  }

  // ---- Simulate; re-route crash-interrupted requests until quiescent ----
  std::vector<SimResult> results(static_cast<size_t>(n));
  auto simulate = [&](int r) {
    SimulatorOptions replica_options = options_.replica;
    replica_options.cost_model = cost_model_;
    replica_options.fail_interrupted_on_crash = true;
    replica_options.outages = outage_schedules_[static_cast<size_t>(r)];
    replica_options.slowdowns = slowdown_schedules_[static_cast<size_t>(r)];
    replica_options.jitter_probability = injector.options().jitter_probability;
    replica_options.jitter_max_extra = injector.options().jitter_max_extra;
    replica_options.jitter_seed = injector.options().seed;
    replica_options.trace_pid = r;
    replica_options.tracer = nullptr;
    replica_options.metrics = nullptr;
    // Shared PR-level sinks never see discarded retry rounds; the merged
    // result is replayed into them once at the end of Run.
    replica_options.flight = nullptr;
    replica_options.slo = nullptr;
    if (dest_tracer != nullptr) {
      replica_tracers[static_cast<size_t>(r)] = std::make_unique<Tracer>();
      replica_options.tracer = replica_tracers[static_cast<size_t>(r)].get();
    }
    if (dest_metrics != nullptr) {
      replica_metrics[static_cast<size_t>(r)] =
          std::make_unique<MetricsRegistry>(dest_metrics->window_s());
      replica_options.metrics = replica_metrics[static_cast<size_t>(r)].get();
    }
    results[static_cast<size_t>(r)] =
        ReplicaSimulator(replica_options).Run(sub[static_cast<size_t>(r)]);
  };
  for (int r = 0; r < n; ++r) {
    simulate(r);
  }

  // Each round re-routes every retryable interruption and re-simulates the
  // replicas that received work. Re-simulation only ever adds load, so a
  // previously interrupted attempt stays interrupted and the loop converges:
  // total attempts are capped at num_requests * (max_retries + 1).
  auto run_retry_rounds = [&]() {
    int64_t round_guard =
        static_cast<int64_t>(num_requests) * (options_.max_retries + 1) + 1;
    while (round_guard-- > 0) {
      struct Retry {
        double time;
        size_t index;
      };
      std::vector<Retry> retries;
      for (size_t i = 0; i < num_requests; ++i) {
        if (shed[i] || retry_denied[i] ||
            failure_override[i].first != FailureKind::kNone) {
          continue;
        }
        const Attempt& last = chains[i].back();
        size_t slot = FindAttemptSlot(results[static_cast<size_t>(last.replica)],
                                      stamped.requests[i].id, last.arrival_s);
        CHECK_NE(slot, kNoSlot);
        const RequestMetrics& m = results[static_cast<size_t>(last.replica)].requests[slot];
        if (!m.failed() || m.failure != FailureKind::kReplicaCrash) {
          continue;  // Completed, still only timed out, or never failed.
        }
        int used = static_cast<int>(chains[i].size()) - 1;
        if (used >= options_.max_retries) {
          continue;  // Retries exhausted: the crash failure stands.
        }
        // Full jitter (when enabled) decorrelates the retry instants of
        // requests interrupted by the same crash, so survivors do not land on
        // the failover replica as a thundering herd.
        double backoff =
            options_.retry_jitter
                ? FullJitterBackoffS(options_.retry_backoff_s, used,
                                     stamped.requests[i].id, options_.faults.seed)
                : options_.retry_backoff_s * static_cast<double>(int64_t{1} << used);
        double t = NextHealthyTime(m.failed_s + backoff);
        if (t == kInfinity) {
          continue;  // No replica ever recovers: the crash failure stands.
        }
        double deadline_abs =
            stamped.requests[i].deadline_s > 0.0
                ? stamped.requests[i].arrival_time_s + stamped.requests[i].deadline_s
                : 0.0;
        if (deadline_abs > 0.0 && t >= deadline_abs) {
          failure_override[i] = {FailureKind::kTimeout, deadline_abs};
          continue;  // The client will have given up before the retry lands.
        }
        retries.push_back({t, i});
      }
      if (retries.empty()) {
        break;
      }
      std::sort(retries.begin(), retries.end(), [](const Retry& a, const Retry& b) {
        if (a.time != b.time) {
          return a.time < b.time;
        }
        return a.index < b.index;
      });
      std::set<int> dirty;
      for (const Retry& retry : retries) {
        size_t i = retry.index;
        // Budget check in dispatch (time) order: under a storm the earliest
        // retries drain the bucket and the rest keep their crash failures.
        if (!retry_budget.TryConsume(retry.time)) {
          retry_denied[i] = true;
          ++retries_denied;
          if (dest_tracer != nullptr) {
            dest_tracer->Instant("router", "retry_denied", retry.time,
                                 {Arg("request", stamped.requests[i].id)});
          }
          if (dest_metrics != nullptr) {
            dest_metrics->AddCount("retries_denied", retry.time);
          }
          continue;
        }
        Request attempt = stamped.requests[i];
        attempt.arrival_time_s = retry.time;
        // Distinct round → distinct async-span id, even when the retry lands
        // back on a replica that already traced an attempt of this request.
        attempt.retry_round = static_cast<int64_t>(chains[i].size());
        if (attempt.deadline_s > 0.0) {
          // The clock started at the original arrival; only the remainder is
          // available to the retried attempt.
          attempt.deadline_s = stamped.requests[i].arrival_time_s +
                               stamped.requests[i].deadline_s - retry.time;
        }
        int pick = Route(attempt.total_tokens(), retry.time, chains[i].back().replica, &router);
        if (pick < 0) {
          continue;  // Every live replica quarantined or down: failure stands.
        }
        if (dest_tracer != nullptr) {
          dest_tracer->Instant("router", "retry", retry.time,
                               {Arg("request", attempt.id),
                                Arg("replica", static_cast<int64_t>(pick))});
        }
        if (dest_metrics != nullptr) {
          dest_metrics->AddCount("retries", retry.time);
        }
        chains[i].push_back({pick, retry.time, false});
        InsertSorted(&sub[static_cast<size_t>(pick)], attempt);
        dirty.insert(pick);
      }
      if (dirty.empty()) {
        break;  // Nothing routable this round; nothing will change.
      }
      for (int r : dirty) {
        simulate(r);
      }
    }
  };
  run_retry_rounds();

  auto deadline_abs_of = [&](size_t i) {
    return stamped.requests[i].deadline_s > 0.0
               ? stamped.requests[i].arrival_time_s + stamped.requests[i].deadline_s
               : 0.0;
  };
  auto attempt_metrics = [&](const Attempt& attempt, int64_t id) -> const RequestMetrics& {
    size_t slot =
        FindAttemptSlot(results[static_cast<size_t>(attempt.replica)], id, attempt.arrival_s);
    CHECK_NE(slot, kNoSlot);
    return results[static_cast<size_t>(attempt.replica)].requests[slot];
  };

  // ---- Degraded failover: drain-and-recompute or live KV migration ----
  int64_t migrations_done = 0;
  int64_t migrations_cancelled = 0;
  int64_t drain_failovers = 0;
  int64_t migrated_kv_bytes = 0;
  if (options_.degraded_failover != FailoverMode::kNone) {
    const bool live_migrate = options_.degraded_failover == FailoverMode::kLiveMigrate;
    // Decide which requests to pull off which replicas. Only decode-phase
    // requests are worth moving (a queued or still-prefilling request holds
    // little KV and is covered by hedging); parallel-sampling parents are
    // left in place (their forked siblings share prompt KV on the source).
    struct Failover {
      size_t index;
      int src;
      double plan_s;
      int dst = -1;
    };
    std::vector<Failover> decisions;
    for (size_t i = 0; i < num_requests; ++i) {
      if (shed[i] || failure_override[i].first != FailureKind::kNone ||
          stamped.requests[i].num_samples > 1) {
        continue;
      }
      const Attempt& att = chains[i].back();
      const RequestMetrics& m = attempt_metrics(att, stamped.requests[i].id);
      if (m.failure == FailureKind::kReplicaCrash || m.token_times_s.empty()) {
        continue;
      }
      double done_t = m.completed() ? m.completion_s : (m.failed() ? m.failed_s : kInfinity);
      double deadline_abs = deadline_abs_of(i);
      for (const DetectedInterval& d : detected_[static_cast<size_t>(att.replica)]) {
        double t_m = std::max(d.begin_s, m.token_times_s.front()) + options_.migration_delay_s;
        if (t_m >= d.end_s || t_m >= done_t) {
          continue;  // Detection cleared, or the request finished first.
        }
        if (deadline_abs > 0.0 && t_m >= deadline_abs) {
          continue;  // The client gives up before the failover lands.
        }
        decisions.push_back({i, att.replica, t_m});
        break;
      }
    }
    std::sort(decisions.begin(), decisions.end(), [](const Failover& a, const Failover& b) {
      if (a.plan_s != b.plan_s) {
        return a.plan_s < b.plan_s;
      }
      return a.index < b.index;
    });
    // Quarantine every source before choosing destinations: destinations must
    // never land on a replica whose checkpoint timings the extra load would
    // perturb, and the router stops feeding a replica it is draining anyway.
    for (const Failover& d : decisions) {
      quarantined_[static_cast<size_t>(d.src)] = true;
    }
    std::vector<Failover> accepted;
    std::set<int> dirty_src;
    for (Failover& d : decisions) {
      const Request& original = stamped.requests[d.index];
      int64_t route_tokens = live_migrate ? original.output_tokens : original.total_tokens();
      int pick = Route(route_tokens, d.plan_s, /*exclude=*/d.src, &router);
      if (pick < 0 || pick == d.src) {
        continue;  // Nowhere to move it; the request rides out the slowdown.
      }
      d.dst = pick;
      Request* sub_request = FindSubRequest(&sub[static_cast<size_t>(d.src)], original.id,
                                            chains[d.index].back().arrival_s);
      CHECK(sub_request != nullptr);
      sub_request->planned_abort =
          live_migrate ? PlannedAbort::kMigrateOut : PlannedAbort::kDrain;
      sub_request->planned_abort_s = d.plan_s;
      dirty_src.insert(d.src);
      accepted.push_back(d);
      if (dest_tracer != nullptr) {
        dest_tracer->Instant("router", live_migrate ? "migrate_plan" : "drain_plan", d.plan_s,
                             {Arg("request", original.id),
                              Arg("src", static_cast<int64_t>(d.src)),
                              Arg("dst", static_cast<int64_t>(d.dst))});
      }
    }
    for (int r : dirty_src) {
      simulate(r);
    }
    // Read the actual checkpoint outcomes, then build destination attempts.
    // A request that finished before its planned abort fired is a cancelled
    // failover (nothing moved).
    struct Transfer {
      size_t index;
      int dst;
      double failed_s;
      int64_t generated;
    };
    std::vector<Transfer> transfers;
    std::set<int> dirty_dst;
    for (const Failover& d : accepted) {
      const RequestMetrics& sm =
          attempt_metrics(chains[d.index].back(), stamped.requests[d.index].id);
      FailureKind want = live_migrate ? FailureKind::kMigrated : FailureKind::kDegradedDrain;
      if (sm.failure != want) {
        if (live_migrate) {
          ++migrations_cancelled;
        }
        continue;
      }
      double deadline_abs = deadline_abs_of(d.index);
      if (!live_migrate) {
        double t = sm.failed_s;
        if (deadline_abs > 0.0 && t >= deadline_abs) {
          failure_override[d.index] = {FailureKind::kTimeout, deadline_abs};
          continue;
        }
        Request attempt = stamped.requests[d.index];
        attempt.arrival_time_s = t;
        attempt.retry_round = static_cast<int64_t>(chains[d.index].size());
        attempt.num_samples = 1;
        if (attempt.deadline_s > 0.0) {
          attempt.deadline_s = deadline_abs - t;
        }
        chains[d.index].push_back({d.dst, t, false});
        InsertSorted(&sub[static_cast<size_t>(d.dst)], attempt);
        dirty_dst.insert(d.dst);
        ++drain_failovers;
        if (dest_metrics != nullptr) {
          dest_metrics->AddCount("drain_failovers", t);
        }
        continue;
      }
      transfers.push_back({d.index, d.dst, sm.failed_s,
                           static_cast<int64_t>(sm.token_times_s.size())});
    }
    // Serialize KV transfers on the migration link in checkpoint order; the
    // destination adopts the request when its image lands.
    std::sort(transfers.begin(), transfers.end(), [](const Transfer& a, const Transfer& b) {
      if (a.failed_s != b.failed_s) {
        return a.failed_s < b.failed_s;
      }
      return a.index < b.index;
    });
    double link_free = 0.0;
    const int64_t kv_bytes_per_token = options_.replica.model.KvBytesPerToken();
    for (const Transfer& tr : transfers) {
      const Request& original = stamped.requests[tr.index];
      CHECK_GT(tr.generated, 0);  // The checkpoint only fires on decoders.
      if (tr.generated >= original.output_tokens) {
        ++migrations_cancelled;  // Fully generated: nothing left to resume.
        continue;
      }
      int64_t bytes = (original.prompt_tokens + tr.generated - 1) * kv_bytes_per_token;
      double start = std::max(link_free, tr.failed_s);
      double busy = static_cast<double>(bytes) / options_.migration_bandwidth_Bps;
      link_free = start + busy;
      double ready = start + busy + options_.migration_latency_s;
      double deadline_abs = deadline_abs_of(tr.index);
      if (deadline_abs > 0.0 && ready >= deadline_abs) {
        failure_override[tr.index] = {FailureKind::kTimeout, deadline_abs};
        ++migrations_cancelled;
        continue;
      }
      Request attempt = original;
      attempt.arrival_time_s = ready;
      attempt.retry_round = static_cast<int64_t>(chains[tr.index].size());
      attempt.num_samples = 1;
      attempt.restored_generated = tr.generated;
      if (attempt.deadline_s > 0.0) {
        attempt.deadline_s = deadline_abs - ready;
      }
      chains[tr.index].push_back({tr.dst, ready, true});
      InsertSorted(&sub[static_cast<size_t>(tr.dst)], attempt);
      dirty_dst.insert(tr.dst);
      ++migrations_done;
      migrated_kv_bytes += bytes;
      if (dest_tracer != nullptr) {
        dest_tracer->Instant("router", "migrate", ready,
                             {Arg("request", original.id),
                              Arg("dst", static_cast<int64_t>(tr.dst)),
                              Arg("bytes", bytes)});
      }
      if (dest_metrics != nullptr) {
        dest_metrics->AddCount("migrations", ready);
      }
    }
    for (int r : dirty_dst) {
      simulate(r);
    }
    run_retry_rounds();  // Destinations can crash like anything else.
  }

  // ---- Hedged dispatch ----
  // A request still unfinished hedge_after_s into its replica's detected
  // degradation is duplicated onto a healthy replica; whichever attempt
  // finishes first wins and the loser is cancelled at the winner's finish.
  // Winners are decided from the pre-cancellation timeline; cancellation only
  // removes load, so the decided winner still finishes by its decided time
  // and the merge re-reads the final metrics either way.
  struct HedgeInfo {
    bool issued = false;
    int replica = -1;
    double arrival_s = 0.0;
  };
  std::vector<HedgeInfo> hedges(num_requests);
  int64_t hedges_issued = 0;
  if (options_.hedge_after_s > 0.0) {
    std::set<int> dirty;
    for (size_t i = 0; i < num_requests; ++i) {
      if (shed[i] || failure_override[i].first != FailureKind::kNone ||
          stamped.requests[i].num_samples > 1) {
        continue;
      }
      const Attempt& att = chains[i].back();
      // Requests on (or migrated off) a quarantined replica are already being
      // handled by the failover path; hedging them too would stamp cancels
      // onto a replica whose checkpoint timings must stay frozen.
      if (att.migrated_in || quarantined_[static_cast<size_t>(att.replica)]) {
        continue;
      }
      const RequestMetrics& m = attempt_metrics(att, stamped.requests[i].id);
      double done_t = m.completed() ? m.completion_s : (m.failed() ? m.failed_s : kInfinity);
      double deadline_abs = deadline_abs_of(i);
      for (const DetectedInterval& d : detected_[static_cast<size_t>(att.replica)]) {
        double t_h = std::max(d.begin_s, att.arrival_s) + options_.hedge_after_s;
        if (t_h >= d.end_s || t_h >= done_t) {
          continue;  // Detection cleared, or the request finished first.
        }
        if (deadline_abs > 0.0 && t_h >= deadline_abs) {
          continue;
        }
        if (options_.hedge_suppress_outstanding_s > 0.0) {
          // Overload brownout: when every live replica is saturated past the
          // bound, a speculative duplicate only deepens the overload —
          // suppress the hedge and let the primary ride it out.
          AgeOutstanding(&router, t_h);
          double least = kInfinity;
          for (int r = 0; r < n; ++r) {
            if (!DownAt(r, t_h) && !quarantined_[static_cast<size_t>(r)]) {
              least = std::min(least, router.outstanding_tokens[static_cast<size_t>(r)]);
            }
          }
          if (least / service_rate_ > options_.hedge_suppress_outstanding_s) {
            ++hedges_suppressed;
            if (dest_tracer != nullptr) {
              dest_tracer->Instant("router", "hedge_suppressed", t_h,
                                   {Arg("request", stamped.requests[i].id)});
            }
            if (dest_metrics != nullptr) {
              dest_metrics->AddCount("hedges_suppressed", t_h);
            }
            break;
          }
        }
        int pick = Route(stamped.requests[i].total_tokens(), t_h, att.replica, &router);
        if (pick < 0 || pick == att.replica) {
          break;  // No healthy alternative to hedge onto.
        }
        Request attempt = stamped.requests[i];
        attempt.arrival_time_s = t_h;
        // Hedges sit outside the retry chain but still need a round of their
        // own: chains[i].size() is one past the last chained attempt's round,
        // and no further chain attempt is created after hedging.
        attempt.retry_round = static_cast<int64_t>(chains[i].size());
        attempt.num_samples = 1;
        if (attempt.deadline_s > 0.0) {
          attempt.deadline_s = deadline_abs - t_h;
        }
        hedges[i] = {true, pick, t_h};
        InsertSorted(&sub[static_cast<size_t>(pick)], attempt);
        dirty.insert(pick);
        ++hedges_issued;
        if (dest_tracer != nullptr) {
          dest_tracer->Instant("router", "hedge", t_h,
                               {Arg("request", attempt.id),
                                Arg("replica", static_cast<int64_t>(pick))});
        }
        if (dest_metrics != nullptr) {
          dest_metrics->AddCount("hedges", t_h);
        }
        break;
      }
    }
    for (int r : dirty) {
      simulate(r);
    }
    // First-finisher-wins: cancel the loser at the winner's completion (ties
    // go to the primary). When neither attempt ever completes there is
    // nothing to cancel — both outcomes stand and the merge keeps the
    // primary's failure.
    std::set<int> dirty_cancel;
    for (size_t i = 0; i < num_requests; ++i) {
      if (!hedges[i].issued) {
        continue;
      }
      const Attempt& primary = chains[i].back();
      const RequestMetrics& pm = attempt_metrics(primary, stamped.requests[i].id);
      Attempt hedge_attempt{hedges[i].replica, hedges[i].arrival_s, false};
      const RequestMetrics& hm = attempt_metrics(hedge_attempt, stamped.requests[i].id);
      double p_fin = pm.completed() ? pm.completion_s : kInfinity;
      double h_fin = hm.completed() ? hm.completion_s : kInfinity;
      double t_win;
      int loser_replica;
      double loser_arrival;
      if (h_fin < p_fin) {
        t_win = h_fin;
        loser_replica = primary.replica;
        loser_arrival = primary.arrival_s;
      } else if (p_fin < kInfinity) {
        t_win = p_fin;
        loser_replica = hedges[i].replica;
        loser_arrival = hedges[i].arrival_s;
      } else {
        continue;
      }
      Request* sub_request = FindSubRequest(&sub[static_cast<size_t>(loser_replica)],
                                            stamped.requests[i].id, loser_arrival);
      CHECK(sub_request != nullptr);
      sub_request->planned_abort = PlannedAbort::kHedgeCancel;
      sub_request->planned_abort_s = t_win;
      dirty_cancel.insert(loser_replica);
    }
    for (int r : dirty_cancel) {
      simulate(r);
    }
  }

  // ---- Merge ----
  SimResult merged;
  merged.scheduler_name = results[0].scheduler_name + " x" + std::to_string(n) + " (" +
                          std::string(RoutingPolicyName(options_.routing)) + ")";
  merged.requests.resize(num_requests);
  std::vector<std::vector<bool>> consumed(static_cast<size_t>(n));
  for (int r = 0; r < n; ++r) {
    consumed[static_cast<size_t>(r)].assign(results[static_cast<size_t>(r)].requests.size(),
                                            false);
  }

  int64_t lost_tokens = 0;
  for (size_t i = 0; i < num_requests; ++i) {
    const Request& original = stamped.requests[i];
    if (shed[i]) {
      RequestMetrics m;
      m.id = original.id;
      m.qos = original.qos;
      m.arrival_s = original.arrival_time_s;
      m.deadline_s = original.deadline_s;
      m.failed_s = original.arrival_time_s;
      m.failure = FailureKind::kShed;
      merged.requests[i] = m;
      ++merged.num_shed;
      continue;
    }
    const auto& chain = chains[i];
    // Walk the attempt chain reconstructing the client-visible token stream.
    // `carried` holds tokens the client already consumed from attempts whose
    // service was preserved across a hop: a live migration's destination
    // resumes after them (all its tokens are fresh), a drain's destination
    // re-emits them (the duplicates are dropped client-side and counted
    // lost). A crash hop restarts the stream — everything so far is lost,
    // matching the plain retry semantics.
    std::vector<double> carried;
    std::vector<double> fresh;
    int64_t emitted = 0;
    int64_t wasted = 0;
    int64_t cached = 0;
    int64_t crash_retries = 0;
    int64_t num_migrated_in = 0;
    double first_sched = -1.0;
    const RequestMetrics* final_attempt = nullptr;
    for (size_t a = 0; a < chain.size(); ++a) {
      SimResult& replica_result = results[static_cast<size_t>(chain[a].replica)];
      size_t slot = FindAttemptSlot(replica_result, original.id, chain[a].arrival_s);
      CHECK_NE(slot, kNoSlot);
      consumed[static_cast<size_t>(chain[a].replica)][slot] = true;
      const RequestMetrics& am = replica_result.requests[slot];
      emitted += static_cast<int64_t>(am.token_times_s.size());
      wasted += am.wasted_tokens;
      cached += am.cached_prefill_tokens;
      if (am.failure == FailureKind::kHedgeCancelled) {
        ++merged.hedges_cancelled;
      }
      if (first_sched < 0.0) {
        first_sched = am.first_scheduled_s;
      }
      if (chain[a].migrated_in) {
        ++num_migrated_in;
        fresh = am.token_times_s;  // Resumed past `carried`: all fresh.
      } else {
        size_t drop = std::min(carried.size(), am.token_times_s.size());
        fresh.assign(am.token_times_s.begin() + static_cast<long>(drop),
                     am.token_times_s.end());
      }
      if (a + 1 < chain.size()) {
        bool preserved =
            (am.failure == FailureKind::kMigrated && chain[a + 1].migrated_in) ||
            am.failure == FailureKind::kDegradedDrain;
        if (preserved) {
          carried.insert(carried.end(), fresh.begin(), fresh.end());
        } else {
          carried.clear();  // Crash hop: the retry restarts the stream.
          first_sched = -1.0;
          ++crash_retries;
        }
      } else {
        final_attempt = &am;
      }
    }
    std::vector<double> stream = carried;
    stream.insert(stream.end(), fresh.begin(), fresh.end());
    // Hedge resolution, from the final simulated data (re-simulation after
    // cancellation can only move completions earlier, so the decided winner
    // may even have improved — whichever attempt actually finished first is
    // the one the client was served from).
    int64_t hedged = 0;
    if (hedges[i].issued) {
      hedged = 1;
      SimResult& hedge_result = results[static_cast<size_t>(hedges[i].replica)];
      size_t hslot = FindAttemptSlot(hedge_result, original.id, hedges[i].arrival_s);
      CHECK_NE(hslot, kNoSlot);
      consumed[static_cast<size_t>(hedges[i].replica)][hslot] = true;
      const RequestMetrics& hm = hedge_result.requests[hslot];
      emitted += static_cast<int64_t>(hm.token_times_s.size());
      wasted += hm.wasted_tokens;
      cached += hm.cached_prefill_tokens;
      if (hm.failure == FailureKind::kHedgeCancelled) {
        ++merged.hedges_cancelled;
      }
      double p_fin = final_attempt->completed() ? final_attempt->completion_s : kInfinity;
      double h_fin = hm.completed() ? hm.completion_s : kInfinity;
      if (h_fin < p_fin) {
        ++merged.hedges_won;
        size_t drop = std::min(carried.size(), hm.token_times_s.size());
        stream = carried;
        stream.insert(stream.end(), hm.token_times_s.begin() + static_cast<long>(drop),
                      hm.token_times_s.end());
        if (carried.empty()) {
          first_sched = hm.first_scheduled_s;
        }
        final_attempt = &hm;
      }
    }
    RequestMetrics m = *final_attempt;
    m.token_times_s = stream;
    // Latency metrics measure from the client's original arrival, covering
    // every failed attempt, backoff wait, and migration transfer.
    m.arrival_s = original.arrival_time_s;
    m.deadline_s = original.deadline_s;
    m.first_scheduled_s = first_sched;
    m.retries = crash_retries;
    m.migrations = num_migrated_in;
    m.hedges = hedged;
    m.wasted_tokens = wasted;
    // Every attempt's cache-served prefill was real reuse on its replica.
    m.cached_prefill_tokens = cached;
    if (failure_override[i].first != FailureKind::kNone) {
      m.failure = failure_override[i].first;
      m.failed_s = failure_override[i].second;
    }
    lost_tokens += emitted - static_cast<int64_t>(stream.size());
    merged.requests[i] = m;
  }
  // Forked siblings (parallel sampling) belong to no routing chain; append
  // them so their tokens and TBT samples stay in the merged metrics.
  for (int r = 0; r < n; ++r) {
    const SimResult& result = results[static_cast<size_t>(r)];
    for (size_t slot = 0; slot < result.requests.size(); ++slot) {
      if (!consumed[static_cast<size_t>(r)][slot]) {
        merged.requests.push_back(result.requests[slot]);
      }
    }
  }

  for (int r = 0; r < n; ++r) {
    const SimResult& result = results[static_cast<size_t>(r)];
    merged.num_iterations += result.num_iterations;
    merged.num_preemptions += result.num_preemptions;
    merged.makespan_s = std::max(merged.makespan_s, result.makespan_s);
    merged.active_window_s = std::max(merged.active_window_s, result.active_window_s);
    merged.total_output_tokens += result.total_output_tokens;
    merged.total_prefill_tokens += result.total_prefill_tokens;
    merged.total_flops += result.total_flops;
    merged.peak_flops += result.peak_flops;
    merged.total_bytes += result.total_bytes;
    merged.peak_bandwidth += result.peak_bandwidth;
    merged.stage_busy_s.insert(merged.stage_busy_s.end(), result.stage_busy_s.begin(),
                               result.stage_busy_s.end());
    merged.num_outages += result.num_outages;
    merged.downtime_s += result.downtime_s;
    merged.replica_downtime_s.push_back(result.downtime_s);
    merged.peak_kv_blocks += result.peak_kv_blocks;
    merged.total_kv_blocks += result.total_kv_blocks;
    merged.prefix_lookups += result.prefix_lookups;
    merged.prefix_hits += result.prefix_hits;
    merged.cached_prefill_tokens += result.cached_prefill_tokens;
    merged.prefix_evictions += result.prefix_evictions;
    merged.peak_cached_blocks += result.peak_cached_blocks;
    merged.num_slowdown_episodes += result.num_slowdown_episodes;
    merged.degraded_s += result.degraded_s;
    merged.degraded_iterations += result.degraded_iterations;
    merged.num_shed_admission += result.num_shed_admission;
    merged.num_shed_queue += result.num_shed_queue;
    merged.num_browned_out += result.num_browned_out;
    merged.overload_transitions += result.overload_transitions;
    if (dest_tracer != nullptr && replica_tracers[static_cast<size_t>(r)] != nullptr) {
      dest_tracer->Append(*replica_tracers[static_cast<size_t>(r)]);
    }
    if (dest_metrics != nullptr && replica_metrics[static_cast<size_t>(r)] != nullptr) {
      dest_metrics->MergeFrom(*replica_metrics[static_cast<size_t>(r)]);
    }
  }
  merged.total_output_tokens -= lost_tokens;
  merged.lost_output_tokens = lost_tokens;
  merged.probe_transitions = static_cast<int64_t>(prober.transitions().size());
  merged.hedges_issued = hedges_issued;
  merged.migrations = migrations_done;
  merged.migrations_cancelled = migrations_cancelled;
  merged.drain_failovers = drain_failovers;
  merged.migrated_kv_bytes = migrated_kv_bytes;
  merged.num_retries_denied = retries_denied;
  merged.num_hedges_suppressed = hedges_suppressed;
  merged.num_backpressure_skips = backpressure_skips_;

  // ---- Post-hoc flight / SLO replay ----
  // Only the merged result is the client-visible timeline, so the shared
  // sinks are fed here, in global time order, once per Run.
  if (flight != nullptr) {
    enum ReplayKind { kArrival, kCompletion, kFailure, kProbe, kCrash, kRecover };
    struct FlightReplay {
      double t;
      ReplayKind kind;
      int pid;
      int64_t id;
      double value;
    };
    std::vector<FlightReplay> replay;
    for (const RequestMetrics& m : merged.requests) {
      replay.push_back({m.arrival_s, kArrival, n, m.id, 0.0});
      if (m.completed()) {
        replay.push_back({m.completion_s, kCompletion, n, m.id, m.completion_s - m.arrival_s});
      } else if (m.failed()) {
        replay.push_back(
            {m.failed_s, kFailure, n, m.id, static_cast<double>(static_cast<int>(m.failure))});
      }
    }
    for (const HealthTransition& tr : prober.transitions()) {
      replay.push_back({tr.time_s, kProbe, tr.replica, static_cast<int64_t>(tr.to), 0.0});
    }
    for (int r = 0; r < n; ++r) {
      for (const ReplicaOutage& outage : outage_schedules_[static_cast<size_t>(r)]) {
        if (outage.down_s > merged.makespan_s) {
          continue;
        }
        replay.push_back({outage.down_s, kCrash, r, 0, 0.0});
        replay.push_back({outage.up_s, kRecover, r, 0, 0.0});
      }
    }
    std::stable_sort(replay.begin(), replay.end(),
                     [](const FlightReplay& a, const FlightReplay& b) { return a.t < b.t; });
    for (const FlightReplay& e : replay) {
      switch (e.kind) {
        case kArrival:
          flight->RecordInstant("request", "arrival", e.t, e.pid,
                                {{"request", static_cast<double>(e.id)}});
          break;
        case kCompletion:
          flight->RecordInstant("request", "completion", e.t, e.pid,
                                {{"request", static_cast<double>(e.id)}, {"latency_s", e.value}});
          break;
        case kFailure:
          flight->RecordInstant("fault", "failure", e.t, e.pid,
                                {{"request", static_cast<double>(e.id)}, {"failure", e.value}});
          break;
        case kProbe:
          flight->RecordInstant("router", "probe_transition", e.t, e.pid,
                                {{"health", static_cast<double>(e.id)}});
          break;
        case kCrash:
          flight->Trigger("replica_crash", e.t, e.pid);
          break;
        case kRecover:
          flight->RecordInstant("fault", "recovered", e.t, e.pid);
          break;
      }
    }
  }
  ReplaySloFromResult(merged, slo);
  return merged;
}

}  // namespace sarathi
