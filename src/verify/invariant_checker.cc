#include "src/verify/invariant_checker.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "src/common/logging.h"
#include "src/scheduler/request_state.h"

namespace sarathi {

std::string_view InvariantName(Invariant invariant) {
  switch (invariant) {
    case Invariant::kTokenBudget:
      return "token_budget";
    case Invariant::kStallFree:
      return "stall_free";
    case Invariant::kTokenConservation:
      return "token_conservation";
    case Invariant::kKvConservation:
      return "kv_conservation";
    case Invariant::kClockMonotonic:
      return "clock_monotonic";
    case Invariant::kBatchSanity:
      return "batch_sanity";
    case Invariant::kMigrationConservation:
      return "migration_conservation";
    case Invariant::kNoStarvation:
      return "no_starvation";
    case Invariant::kPrefixCache:
      return "prefix_cache";
    case Invariant::kPartitionConservation:
      return "partition_conservation";
  }
  return "unknown";
}

std::string Violation::Render() const {
  std::ostringstream out;
  out << "[" << InvariantName(invariant) << "] run=" << run << " iteration=" << iteration;
  if (request_id >= 0) {
    out << " request=" << request_id;
  }
  out << ": " << message;
  return out.str();
}

InvariantChecker::InvariantChecker() : InvariantChecker(Options()) {}

InvariantChecker::InvariantChecker(Options options) : options_(options) {
  CHECK_GE(options_.max_violations, 0);
}

void InvariantChecker::AddViolation(Invariant invariant, int64_t request_id,
                                    std::string message) {
  Violation violation;
  violation.invariant = invariant;
  violation.run = run_label_;
  violation.iteration = iteration_;
  violation.request_id = request_id;
  violation.message = std::move(message);
  ++total_violations_;
  if (flight_ != nullptr) {
    // Dump the flight ring before a fatal abort can tear the process down;
    // the events preceding the violation are the record worth keeping.
    flight_->Trigger("invariant_violation",
                     std::max(last_schedule_s_, last_apply_s_));
  }
  if (options_.fatal) {
    LOG(Fatal) << "invariant violation: " << violation.Render();
  }
  if (static_cast<int64_t>(violations_.size()) < options_.max_violations) {
    violations_.push_back(std::move(violation));
  }
}

void InvariantChecker::MergeFrom(const InvariantChecker& other) {
  for (const Violation& violation : other.violations_) {
    if (static_cast<int64_t>(violations_.size()) < options_.max_violations) {
      violations_.push_back(violation);
    }
  }
  total_violations_ += other.total_violations_;
  total_iterations_ += other.total_iterations_;
  runs_ += other.runs_;
  if (!other.run_label_.empty()) {
    // Adopt the last run label so violations recorded after the merge (e.g.
    // partition-reconcile checks driven from the router) are tagged exactly
    // as a serial run would have tagged them.
    run_label_ = other.run_label_;
  }
}

void InvariantChecker::CheckPartitionReconcile(const PartitionReconcile& reconcile) {
  const int64_t id = reconcile.request_id;
  // Exactly one completion: whenever both attempts ran to completion, the
  // losing one's completion must have been suppressed before delivery.
  if (reconcile.loser_completed && !reconcile.loser_suppressed) {
    AddViolation(Invariant::kPartitionConservation, id,
                 "duplicate completion: losing attempt finished but was not suppressed");
  }
  // Delivery deferral: a far-side winner's output cannot reach the client
  // strictly inside the partition window — the link was down.
  if (reconcile.winner_far) {
    for (double t : reconcile.delivered_token_times_s) {
      if (t > reconcile.partition_begin_s && t < reconcile.partition_end_s) {
        std::ostringstream out;
        out << "token delivered at " << t << " inside partition window ["
            << reconcile.partition_begin_s << ", " << reconcile.partition_end_s << ")";
        AddViolation(Invariant::kPartitionConservation, id, out.str());
        break;
      }
    }
  }
  // Conservation: the client sees the winning attempt's stream, token for
  // token — nothing lost, nothing double-delivered from merging the two
  // attempts.
  if (reconcile.delivered_token_times_s.size() != reconcile.winner_token_times_s.size()) {
    std::ostringstream out;
    out << "delivered " << reconcile.delivered_token_times_s.size()
        << " tokens but the winning attempt produced "
        << reconcile.winner_token_times_s.size();
    AddViolation(Invariant::kPartitionConservation, id, out.str());
  } else {
    for (size_t i = 0; i < reconcile.delivered_token_times_s.size(); ++i) {
      if (reconcile.delivered_token_times_s[i] != reconcile.winner_token_times_s[i]) {
        std::ostringstream out;
        out << "delivered token " << i << " at " << reconcile.delivered_token_times_s[i]
            << " but the winner emitted it at " << reconcile.winner_token_times_s[i];
        AddViolation(Invariant::kPartitionConservation, id, out.str());
        break;
      }
    }
  }
  if (reconcile.output_tokens > 0 &&
      static_cast<int64_t>(reconcile.delivered_token_times_s.size()) >
          reconcile.output_tokens) {
    std::ostringstream out;
    out << "delivered " << reconcile.delivered_token_times_s.size()
        << " tokens for a request of " << reconcile.output_tokens;
    AddViolation(Invariant::kPartitionConservation, id, out.str());
  }
  for (size_t i = 1; i < reconcile.delivered_token_times_s.size(); ++i) {
    if (reconcile.delivered_token_times_s[i] < reconcile.delivered_token_times_s[i - 1]) {
      std::ostringstream out;
      out << "delivered stream not monotone: token " << i << " at "
          << reconcile.delivered_token_times_s[i] << " precedes token " << i - 1 << " at "
          << reconcile.delivered_token_times_s[i - 1];
      AddViolation(Invariant::kPartitionConservation, id, out.str());
      break;
    }
  }
  if (reconcile.delivered_completion_s > 0.0 &&
      !reconcile.delivered_token_times_s.empty() &&
      reconcile.delivered_completion_s < reconcile.delivered_token_times_s.back()) {
    std::ostringstream out;
    out << "completion delivered at " << reconcile.delivered_completion_s
        << " before the last token at " << reconcile.delivered_token_times_s.back();
    AddViolation(Invariant::kPartitionConservation, id, out.str());
  }
}

void InvariantChecker::BeginRun(const Scheduler* scheduler, const KvAllocator* allocator,
                                std::string label) {
  CHECK(scheduler != nullptr);
  CHECK(allocator != nullptr);
  scheduler_ = scheduler;
  allocator_ = allocator;
  run_label_ = std::move(label);
  iteration_ = 0;
  last_schedule_s_ = 0.0;
  last_apply_s_ = 0.0;
  any_scheduled_ = false;
  any_applied_ = false;
  shadows_.clear();
  live_kv_.clear();
  enqueue_counter_ = 0;
  ++runs_;
}

void InvariantChecker::AuditKv(const char* where) {
  std::string audit = allocator_->AuditInvariants();
  if (!audit.empty()) {
    AddViolation(Invariant::kKvConservation, -1,
                 std::string("allocator audit failed after ") + where + ": " + audit);
  }
  // Structural self-audit of the radix prefix cache (empty string for
  // allocators without one): retained chains intact, no block cached twice,
  // no eviction of a block a live sequence or pin still maps.
  std::string cache_audit = allocator_->AuditCache();
  if (!cache_audit.empty()) {
    AddViolation(Invariant::kPrefixCache, -1,
                 std::string("prefix-cache audit failed after ") + where + ": " + cache_audit);
  }
  int64_t observed = allocator_->num_sequences();
  auto expected = static_cast<int64_t>(live_kv_.size());
  if (observed != expected) {
    std::ostringstream out;
    out << "after " << where << ": allocator holds " << observed << " sequences but "
        << expected << " were admitted/forked and not released";
    AddViolation(Invariant::kKvConservation, -1, out.str());
  }
}

void InvariantChecker::CheckBatchSanity(const ScheduledBatch& batch) {
  std::unordered_set<const RequestState*> seen;
  for (const auto& item : batch.items) {
    if (item.request == nullptr) {
      AddViolation(Invariant::kBatchSanity, -1, "batch item with null request");
      continue;
    }
    const RequestState* request = item.request;
    if (!seen.insert(request).second) {
      AddViolation(Invariant::kBatchSanity, request->id(),
                   "request appears twice in one batch");
      continue;
    }
    auto it = shadows_.find(request);
    if (it == shadows_.end()) {
      AddViolation(Invariant::kBatchSanity, request->id(),
                   "scheduled without ever being enqueued or adopted");
      continue;
    }
    Shadow& shadow = it->second;
    if (shadow.closed) {
      AddViolation(Invariant::kBatchSanity, request->id(),
                   "scheduled after finishing or aborting");
    }
    if (shadow.in_flight) {
      AddViolation(Invariant::kBatchSanity, request->id(),
                   "scheduled while still inside an in-flight batch");
    }
    if (item.is_decode) {
      if (item.num_tokens != 1) {
        std::ostringstream out;
        out << "decode item carries " << item.num_tokens << " tokens, expected 1";
        AddViolation(Invariant::kBatchSanity, request->id(), out.str());
      }
      if (!request->prefill_complete()) {
        std::ostringstream out;
        out << "decode scheduled with prefill incomplete (" << request->prefill_done()
            << "/" << request->prefill_target() << " tokens)";
        AddViolation(Invariant::kBatchSanity, request->id(), out.str());
      }
    } else {
      if (item.num_tokens <= 0 || item.num_tokens > request->remaining_prefill()) {
        std::ostringstream out;
        out << "prefill chunk of " << item.num_tokens << " tokens, expected 1.."
            << request->remaining_prefill();
        AddViolation(Invariant::kBatchSanity, request->id(), out.str());
      }
    }
    shadow.in_flight = true;
  }
}

void InvariantChecker::CheckTokenBudget(const ScheduledBatch& batch) {
  SchedulerGuarantees guarantees = scheduler_->guarantees();
  if (guarantees.token_budget < 0 || batch.NumPrefillTokens() == 0) {
    return;  // No promise, or a decode-only batch (decodes pack unconditionally).
  }
  if (batch.TotalTokens() > guarantees.token_budget) {
    std::ostringstream out;
    out << "batch carries " << batch.TotalTokens() << " tokens ("
        << batch.NumPrefillTokens() << " prefill + " << batch.NumDecodes()
        << " decode) with prefill work, but the declared token budget is "
        << guarantees.token_budget;
    AddViolation(Invariant::kTokenBudget, -1, out.str());
  }
}

void InvariantChecker::CheckStallFree(const ScheduledBatch& batch) {
  SchedulerGuarantees guarantees = scheduler_->guarantees();
  if (!guarantees.stall_free || batch.NumPrefillTokens() == 0) {
    return;
  }
  // A decode may legitimately be skipped when batch slots or KV memory ran
  // out; only flag skips with slots and memory to spare.
  if (static_cast<int64_t>(batch.items.size()) >= scheduler_->config().max_batch_size) {
    return;
  }
  if (allocator_->total_units() - allocator_->used_units() <= 0) {
    return;
  }
  std::unordered_set<const RequestState*> in_batch;
  for (const auto& item : batch.items) {
    in_batch.insert(item.request);
  }
  for (const RequestState* request : scheduler_->running()) {
    if (request->locked() || !request->prefill_complete() || request->finished()) {
      continue;
    }
    if (!in_batch.contains(request)) {
      std::ostringstream out;
      out << "running decode-ready request skipped while the batch carries "
          << batch.NumPrefillTokens() << " prefill tokens, "
          << batch.items.size() << "/" << scheduler_->config().max_batch_size
          << " batch slots used and " << allocator_->total_units() - allocator_->used_units()
          << " KV units free (generation stall, §4.2)";
      AddViolation(Invariant::kStallFree, request->id(), out.str());
    }
  }
}

void InvariantChecker::OnBatchScheduled(const ScheduledBatch& batch, double now_s) {
  CHECK(scheduler_ != nullptr) << "OnBatchScheduled before BeginRun";
  ++iteration_;
  ++total_iterations_;
  if (any_scheduled_ && now_s < last_schedule_s_) {
    std::ostringstream out;
    out << "schedule time moved backwards: " << now_s << "s after " << last_schedule_s_
        << "s";
    AddViolation(Invariant::kClockMonotonic, -1, out.str());
  }
  last_schedule_s_ = now_s;
  any_scheduled_ = true;
  CheckBatchSanity(batch);
  CheckTokenBudget(batch);
  CheckStallFree(batch);
  AuditKv("schedule");
}

void InvariantChecker::OnBatchApplied(const ScheduledBatch& batch, double exit_s) {
  CHECK(scheduler_ != nullptr) << "OnBatchApplied before BeginRun";
  if (any_applied_ && exit_s < last_apply_s_) {
    std::ostringstream out;
    out << "batch exit time moved backwards: " << exit_s << "s after " << last_apply_s_
        << "s";
    AddViolation(Invariant::kClockMonotonic, -1, out.str());
  }
  last_apply_s_ = exit_s;
  any_applied_ = true;
  for (const auto& item : batch.items) {
    const RequestState* request = item.request;
    auto it = shadows_.find(request);
    if (it == shadows_.end()) {
      AddViolation(Invariant::kTokenConservation, request->id(),
                   "batch applied for an untracked request");
      continue;
    }
    Shadow& shadow = it->second;
    if (!shadow.in_flight) {
      AddViolation(Invariant::kBatchSanity, request->id(),
                   "batch applied but was never scheduled (or applied twice)");
    }
    shadow.in_flight = false;
    if (item.is_decode) {
      ++shadow.generated;
    } else {
      shadow.prefill_done += item.num_tokens;
      if (shadow.prefill_done > shadow.prefill_target) {
        std::ostringstream out;
        out << "prefill progressed to " << shadow.prefill_done << " of a "
            << shadow.prefill_target << "-token target";
        AddViolation(Invariant::kTokenConservation, request->id(), out.str());
      }
      if (shadow.prefill_done == shadow.prefill_target) {
        ++shadow.generated;  // The final chunk's iteration emits token one.
      }
    }
    if (request->prefill_done() != shadow.prefill_done ||
        request->generated() != shadow.generated) {
      std::ostringstream out;
      out << "progress diverged from scheduled work: expected prefill "
          << shadow.prefill_done << "/" << shadow.prefill_target << " and "
          << shadow.generated << " generated, observed prefill " << request->prefill_done()
          << "/" << request->prefill_target() << " and " << request->generated()
          << " generated";
      AddViolation(Invariant::kTokenConservation, request->id(), out.str());
      // Re-sync so one divergence doesn't cascade into a violation per batch.
      shadow.prefill_target = request->prefill_target();
      shadow.prefill_done = request->prefill_done();
      shadow.generated = request->generated();
    }
  }
  AuditKv("apply");
}

void InvariantChecker::OnBatchDiscarded(const ScheduledBatch& batch) {
  CHECK(scheduler_ != nullptr) << "OnBatchDiscarded before BeginRun";
  for (const auto& item : batch.items) {
    auto it = shadows_.find(item.request);
    if (it == shadows_.end()) {
      continue;
    }
    if (!it->second.in_flight) {
      AddViolation(Invariant::kBatchSanity, item.request->id(),
                   "discarded batch was never scheduled");
    }
    it->second.in_flight = false;
  }
}

void InvariantChecker::OnSchedulerEvent(SchedVerifyEvent event, const RequestState* request) {
  CHECK(request != nullptr);
  int64_t id = request->id();
  switch (event) {
    case SchedVerifyEvent::kEnqueue: {
      auto [it, inserted] = shadows_.try_emplace(request);
      Shadow& shadow = it->second;
      // A prefix-cache hit legitimately starts prefill at the matched
      // boundary; anything beyond cached_prefill() is unexplained progress.
      if (request->prefill_done() != request->cached_prefill()) {
        std::ostringstream out;
        out << "enqueued with prefill already at " << request->prefill_done()
            << " tokens, of which only " << request->cached_prefill()
            << " are prefix-cache served";
        AddViolation(Invariant::kTokenConservation, id, out.str());
      }
      if (request->prefill_target() != request->prompt_tokens() + request->generated()) {
        std::ostringstream out;
        out << "enqueued with prefill target " << request->prefill_target()
            << ", expected prompt " << request->prompt_tokens() << " + generated "
            << request->generated() << " (recompute must rebuild generated context)";
        AddViolation(Invariant::kTokenConservation, id, out.str());
      }
      if (!inserted) {
        // Crash-recompute re-enqueue: generation must have been preserved.
        if (shadow.in_flight) {
          AddViolation(Invariant::kBatchSanity, id, "re-enqueued while inside an in-flight batch");
        }
        if (request->generated() != shadow.generated) {
          std::ostringstream out;
          out << "re-enqueued with " << request->generated() << " generated tokens, "
              << shadow.generated << " were emitted";
          AddViolation(Invariant::kTokenConservation, id, out.str());
        }
      }
      shadow.id = id;
      shadow.prompt_tokens = request->prompt_tokens();
      shadow.prefill_target = request->prefill_target();
      shadow.prefill_done = request->prefill_done();
      shadow.generated = request->generated();
      shadow.in_flight = false;
      shadow.closed = false;
      shadow.batch_lane = request->qos() == QosClass::kBatch;
      shadow.arrival_s = request->arrival_time_s();
      shadow.waiting = true;
      shadow.enqueue_seq = ++enqueue_counter_;
      break;
    }
    case SchedVerifyEvent::kAdmit: {
      auto it = shadows_.find(request);
      if (it == shadows_.end()) {
        AddViolation(Invariant::kBatchSanity, id, "admitted without being enqueued");
        break;
      }
      Shadow& shadow = it->second;
      if (shadow.closed) {
        AddViolation(Invariant::kBatchSanity, id, "admitted after finishing or aborting");
      }
      shadow.waiting = false;
      CheckNoStarvation(request, shadow);
      break;
    }
    case SchedVerifyEvent::kAdopt: {
      // Forked sibling: joins post-prefill with the parent's progress.
      Shadow& shadow = shadows_[request];
      shadow.id = id;
      shadow.prompt_tokens = request->prompt_tokens();
      shadow.prefill_target = request->prefill_target();
      shadow.prefill_done = request->prefill_done();
      shadow.generated = request->generated();
      shadow.in_flight = false;
      shadow.closed = false;
      shadow.batch_lane = request->qos() == QosClass::kBatch;
      shadow.arrival_s = request->arrival_time_s();
      shadow.waiting = false;
      if (!request->prefill_complete()) {
        AddViolation(Invariant::kBatchSanity, id, "adopted with prefill incomplete");
      }
      break;
    }
    case SchedVerifyEvent::kAdoptMigrated: {
      // Live-migrated request: the transferred KV must cover the whole prompt
      // and every generated token, and adoption must not schedule recompute.
      Shadow& shadow = shadows_[request];
      shadow.id = id;
      shadow.prompt_tokens = request->prompt_tokens();
      shadow.prefill_target = request->prefill_target();
      shadow.prefill_done = request->prefill_done();
      shadow.generated = request->generated();
      shadow.in_flight = false;
      shadow.closed = false;
      shadow.migrated_in = true;
      shadow.batch_lane = request->qos() == QosClass::kBatch;
      shadow.arrival_s = request->arrival_time_s();
      shadow.waiting = false;
      if (!request->prefill_complete()) {
        AddViolation(Invariant::kMigrationConservation, id,
                     "migrated request adopted with prefill incomplete — the transfer "
                     "must carry the whole prompt KV");
      }
      if (request->generated() <= 0) {
        AddViolation(Invariant::kMigrationConservation, id,
                     "migrated request adopted with zero generated tokens — only "
                     "decoding requests are migrated");
      }
      if (request->generated() >= request->output_tokens()) {
        std::ostringstream out;
        out << "migrated request adopted with generation already complete ("
            << request->generated() << "/" << request->output_tokens() << ")";
        AddViolation(Invariant::kMigrationConservation, id, out.str());
      }
      if (request->prefill_target() != request->prompt_tokens()) {
        std::ostringstream out;
        out << "migrated request adopted with prefill target " << request->prefill_target()
            << " != prompt " << request->prompt_tokens()
            << " — a live migration must not recompute generated context";
        AddViolation(Invariant::kMigrationConservation, id, out.str());
      }
      break;
    }
    case SchedVerifyEvent::kPreempt: {
      auto it = shadows_.find(request);
      if (it == shadows_.end()) {
        AddViolation(Invariant::kBatchSanity, id, "preempted untracked request");
        break;
      }
      Shadow& shadow = it->second;
      if (shadow.in_flight) {
        AddViolation(Invariant::kBatchSanity, id, "preempted while inside an in-flight batch");
      }
      if (request->prefill_done() != 0 ||
          request->prefill_target() != shadow.prompt_tokens + shadow.generated) {
        std::ostringstream out;
        out << "preemption-recompute state wrong: prefill " << request->prefill_done()
            << "/" << request->prefill_target() << ", expected 0/"
            << shadow.prompt_tokens + shadow.generated << " (prompt "
            << shadow.prompt_tokens << " + " << shadow.generated << " generated)";
        AddViolation(Invariant::kTokenConservation, id, out.str());
      }
      shadow.prefill_target = request->prefill_target();
      shadow.prefill_done = 0;
      // A memory-pressure preemption of a migrated-in request is a legitimate
      // recompute; it just forfeits the no-recompute property going forward.
      shadow.migrated_in = false;
      shadow.waiting = true;  // Back at the queue front for re-admission.
      break;
    }
    case SchedVerifyEvent::kAbort: {
      auto it = shadows_.find(request);
      if (it == shadows_.end()) {
        AddViolation(Invariant::kBatchSanity, id, "aborted untracked request");
        break;
      }
      if (it->second.in_flight) {
        AddViolation(Invariant::kBatchSanity, id, "aborted while inside an in-flight batch");
      }
      it->second.closed = true;
      it->second.waiting = false;
      // KV-clean abort: by the time the scheduler reports an abort (overload
      // shed, CoDel drop, timeout, drain), the request's KV must already be
      // released — the per-request form of the end-of-run zero-leak gate.
      if (live_kv_.contains(id)) {
        AddViolation(Invariant::kKvConservation, id,
                     "aborted request still holds a live KV sequence (shed leak)");
      }
      break;
    }
    case SchedVerifyEvent::kFinish: {
      auto it = shadows_.find(request);
      if (it == shadows_.end()) {
        AddViolation(Invariant::kBatchSanity, id, "finished untracked request");
        break;
      }
      if (!request->finished()) {
        std::ostringstream out;
        out << "finish with output incomplete: " << request->generated() << "/"
            << request->output_tokens() << " tokens generated, prefill "
            << request->prefill_done() << "/" << request->prefill_target();
        AddViolation(Invariant::kTokenConservation, id, out.str());
      }
      it->second.closed = true;
      it->second.waiting = false;
      break;
    }
  }
}

void InvariantChecker::CheckNoStarvation(const RequestState* request, const Shadow& shadow) {
  double aging_s = scheduler_->guarantees().batch_aging_s;
  if (aging_s < 0.0 || shadow.batch_lane) {
    return;  // No promise declared, or a batch-lane admission (never a jump).
  }
  if (request->preemptions() > 0) {
    return;  // Preemption re-queues at the front; re-admission is exempt.
  }
  for (const auto& [other, s] : shadows_) {
    if (other == request || !s.waiting || s.closed || !s.batch_lane) {
      continue;
    }
    // Only requests enqueued before this one can be "jumped"; retry attempts
    // enqueue late with their original arrival stamp and don't count.
    if (s.enqueue_seq < shadow.enqueue_seq &&
        request->arrival_time_s() - s.arrival_s > aging_s) {
      std::ostringstream out;
      out << "interactive request admitted past batch-lane request " << s.id
          << " that had already waited " << request->arrival_time_s() - s.arrival_s
          << "s at this request's arrival, beyond the declared " << aging_s
          << "s aging bound";
      AddViolation(Invariant::kNoStarvation, request->id(), out.str());
    }
  }
}

void InvariantChecker::OnKvEvent(KvVerifyEvent event, int64_t seq_id) {
  switch (event) {
    case KvVerifyEvent::kAdmit:
    case KvVerifyEvent::kFork: {
      if (!live_kv_.insert(seq_id).second) {
        AddViolation(Invariant::kKvConservation, seq_id,
                     std::string(KvVerifyEventName(event)) +
                         " of a sequence that is already live");
      }
      break;
    }
    case KvVerifyEvent::kRelease: {
      if (live_kv_.erase(seq_id) == 0) {
        AddViolation(Invariant::kKvConservation, seq_id,
                     "release of a sequence that was never admitted (double free?)");
      }
      break;
    }
    case KvVerifyEvent::kAppend:
    case KvVerifyEvent::kCow: {
      if (!live_kv_.contains(seq_id)) {
        AddViolation(Invariant::kKvConservation, seq_id,
                     std::string(KvVerifyEventName(event)) + " on a dead sequence");
      }
      break;
    }
  }
}

void InvariantChecker::EndRun() {
  CHECK(scheduler_ != nullptr) << "EndRun before BeginRun";
  AuditKv("end of run");
  if (allocator_->num_sequences() != 0 || allocator_->used_units() != 0) {
    std::ostringstream out;
    out << "end of run with " << allocator_->num_sequences() << " sequences and "
        << allocator_->used_units() << "/" << allocator_->total_units()
        << " KV units still held (leak)";
    AddViolation(Invariant::kKvConservation, -1, out.str());
  }
  for (const auto& [request, shadow] : shadows_) {
    (void)request;
    if (shadow.in_flight) {
      AddViolation(Invariant::kBatchSanity, shadow.id,
                   "still inside an in-flight batch at end of run");
    }
    if (!shadow.closed) {
      std::ostringstream out;
      out << "neither finished nor aborted at end of run (prefill " << shadow.prefill_done
          << "/" << shadow.prefill_target << ", " << shadow.generated << " generated)";
      AddViolation(Invariant::kTokenConservation, shadow.id, out.str());
    }
  }
}

std::string InvariantChecker::Report() const {
  std::ostringstream out;
  out << "InvariantChecker: " << total_violations_ << " violation(s) across " << runs_
      << " run(s), " << total_iterations_ << " iteration(s) checked\n";
  if (total_violations_ == 0) {
    return out.str();
  }
  constexpr int kNumInvariants = 10;
  int64_t counts[kNumInvariants] = {};
  for (const Violation& violation : violations_) {
    ++counts[static_cast<int>(violation.invariant)];
  }
  for (int i = 0; i < kNumInvariants; ++i) {
    if (counts[i] > 0) {
      out << "  " << InvariantName(static_cast<Invariant>(i)) << ": " << counts[i] << "\n";
    }
  }
  if (total_violations_ > static_cast<int64_t>(violations_.size())) {
    out << "  (" << total_violations_ - static_cast<int64_t>(violations_.size())
        << " further violation(s) dropped past the cap)\n";
  }
  for (const Violation& violation : violations_) {
    out << violation.Render() << "\n";
  }
  return out.str();
}

}  // namespace sarathi
