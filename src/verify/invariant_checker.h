// Runtime invariant checker: machine-checks the paper's load-bearing
// scheduling and memory guarantees on every iteration of a simulation run.
//
// The checker attaches to a driver through two channels:
//  - ObsHooks::verify (the VerifyHook interface) delivers semantic scheduler
//    and allocator transitions (enqueue/admit/preempt/abort/finish,
//    kv admit/append/fork/cow/release), from which the checker maintains
//    per-request shadow state and a shadow set of live KV sequences.
//  - The driver calls OnBatchScheduled / OnBatchApplied / OnBatchDiscarded /
//    BeginRun / EndRun directly at the corresponding points of its event
//    loop (ReplicaSimulator does this when SimulatorOptions::checker is set).
//
// Invariants checked (paper references in docs/verification.md):
//  - token budget (§4.3):      a batch carrying prefill tokens never exceeds
//                              the budget a policy declares via
//                              Scheduler::guarantees().
//  - stall-free batching (§4.2): no unlocked decode-ready running request is
//                              left out of a prefill-carrying batch while
//                              batch slots and KV memory remain.
//  - token conservation:       scheduled prefill/decode tokens equal each
//                              request's observed progress, across
//                              preemption-recompute and crash-recompute.
//  - KV conservation:          allocator self-audit (refcounts, free list,
//                              used + free == total) plus a live-sequence
//                              cross-check; zero sequences and zero used
//                              units at end of run.
//  - clock monotonicity:       schedule times and batch exits never move
//                              backwards within a run.
//  - batch sanity:             no duplicate or locked-in-flight requests in
//                              a batch, decode items are prefill-complete,
//                              prefill chunks fit the remaining prompt.
//  - migration conservation:   a live-migrated request is adopted with its
//                              prompt KV complete, its generated tokens
//                              intact (> 0, < output), and a prefill target
//                              equal to the prompt — i.e. the migration
//                              itself never recomputes or loses tokens.
//  - prefix-cache conservation: the radix index's structural self-audit
//                              (PrefixCachingAllocator::AuditCache) — every
//                              cached block holds the index's reference, a
//                              chain reference always covers its ancestors,
//                              and eviction never frees a block a live
//                              sequence or pin still maps. Runs alongside
//                              the KV audit on every batch; trivially clean
//                              for non-caching allocators.
//  - no starvation (QoS lanes): when a policy declares a batch_aging_s bound,
//                              no batch-lane request is bypassed at admission
//                              by an interactive request that was enqueued
//                              after it and arrived more than the bound
//                              later. Preemption-driven re-admissions are
//                              exempt (they legitimately rejoin at the queue
//                              front). Additionally, kAbort cross-checks that
//                              the aborted request holds no live KV — the
//                              per-request form of the end-of-run zero-leak
//                              gate, which is what makes overload shedding
//                              provably clean.
//
// Violations carry the run label, iteration, request id and an expected-vs-
// observed message. By default they accumulate (ok()/Report()); with
// Options::fatal they abort immediately — the mode tests and the fuzzer use.
// A disabled checker (null pointer) costs one branch per notification site,
// mirroring the Tracer pattern.

#ifndef SRC_VERIFY_INVARIANT_CHECKER_H_
#define SRC_VERIFY_INVARIANT_CHECKER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/memory/kv_allocator.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/verify_hook.h"
#include "src/scheduler/batch.h"
#include "src/scheduler/scheduler.h"

namespace sarathi {

enum class Invariant {
  kTokenBudget,
  kStallFree,
  kTokenConservation,
  kKvConservation,
  kClockMonotonic,
  kBatchSanity,
  kMigrationConservation,
  kNoStarvation,
  kPrefixCache,
  kPartitionConservation,
};

std::string_view InvariantName(Invariant invariant);

// Everything the router reconciled for one request caught on the far side of
// a network partition: the far (partitioned) attempt kept executing while a
// duplicate was redispatched near-side, and at rejoin exactly one of them may
// reach the client. The cluster simulator feeds this record into
// InvariantChecker::CheckPartitionReconcile after every reconciliation.
struct PartitionReconcile {
  int64_t request_id = -1;
  // The ground-truth partition window of the far replica.
  double partition_begin_s = 0.0;
  double partition_end_s = 0.0;
  // True when the far-side attempt won (its completion reached the client
  // first, counting delivery deferral); false when the duplicate won.
  bool winner_far = false;
  // The winning attempt's client-visible token stream and completion, after
  // delivery deferral (far-side emissions inside the window deliver at
  // partition_end_s).
  std::vector<double> winner_token_times_s;
  double winner_completion_s = 0.0;
  // The merged stream actually delivered to the client.
  std::vector<double> delivered_token_times_s;
  double delivered_completion_s = 0.0;
  // True when the losing attempt's completion was suppressed (it must be
  // whenever both attempts ran to completion).
  bool loser_suppressed = false;
  bool loser_completed = false;
  // The request's requested output length: an upper bound on delivery.
  int64_t output_tokens = 0;
};

struct Violation {
  Invariant invariant = Invariant::kBatchSanity;
  std::string run;          // Label passed to BeginRun.
  int64_t iteration = 0;    // Iterations scheduled in the run so far.
  int64_t request_id = -1;  // -1 when not tied to one request.

  // Expected-vs-observed explanation, e.g. "batch carries 513 tokens with
  // prefill work but the declared token budget is 512".
  std::string message;

  // One-line human-readable rendering of all of the above.
  std::string Render() const;
};

class InvariantChecker final : public VerifyHook {
 public:
  struct Options {
    // Abort (LOG(Fatal)) on the first violation instead of accumulating.
    bool fatal = false;
    // Cap on accumulated violations; further ones are counted but dropped.
    int64_t max_violations = 64;
  };

  InvariantChecker();  // Default options: accumulate, cap at 64.
  explicit InvariantChecker(Options options);

  // Binds the checker to one simulation run and resets per-run shadow state.
  // Violations accumulate across runs (each tagged with its run label), so
  // one checker can ride through a whole cluster simulation or fuzz matrix.
  // The scheduler and allocator must outlive the run.
  void BeginRun(const Scheduler* scheduler, const KvAllocator* allocator,
                std::string label);

  // Driver callbacks, in event-loop order:
  //  OnBatchScheduled — right after Schedule() returned a non-empty batch,
  //                     before the driver locks the items.
  //  OnBatchApplied   — right after OnBatchComplete applied the batch.
  //  OnBatchDiscarded — a crash destroyed the in-flight batch instead.
  void OnBatchScheduled(const ScheduledBatch& batch, double now_s);
  void OnBatchApplied(const ScheduledBatch& batch, double exit_s);
  void OnBatchDiscarded(const ScheduledBatch& batch);

  // Closes the run: no live KV sequences, no used memory, no in-flight
  // batches, every tracked request finished or aborted.
  void EndRun();

  // Partition-reconciliation conservation (the partition_conservation
  // invariant): exactly one attempt's stream reaches the client, token for
  // token, with far-side emissions deferred past the partition window and the
  // losing completion suppressed. Called by the cluster simulator once per
  // reconciled request; standalone replica runs never see it. Safe to call
  // outside BeginRun/EndRun (violations are tagged with the current or last
  // run label).
  void CheckPartitionReconcile(const PartitionReconcile& reconcile);

  // VerifyHook:
  void OnSchedulerEvent(SchedVerifyEvent event, const RequestState* request) override;
  void OnKvEvent(KvVerifyEvent event, int64_t seq_id) override;

  // Flight recorder to fire on the first violation (may be null). Fired
  // before a fatal abort, so the dump survives even in fatal mode.
  void set_flight(FlightRecorder* flight) { flight_ = flight; }

  bool ok() const { return total_violations_ == 0; }
  const std::vector<Violation>& violations() const { return violations_; }
  int64_t total_violations() const { return total_violations_; }
  int64_t iterations_checked() const { return total_iterations_; }
  int64_t runs_checked() const { return runs_; }
  const Options& options() const { return options_; }

  // Folds another checker's accumulated results into this one: retained
  // violations append in the other checker's order (subject to this checker's
  // max_violations cap), and the violation/iteration/run totals add. The
  // sharded cluster engine gives every shard its own checker with the same
  // cap, then merges them back in replica-index order — because each shard
  // appends its violations in replica order and caps at the destination's
  // limit, the merged retained list is byte-identical to what one shared
  // checker would have accumulated serially. Per-run shadow state is not
  // merged (the other checker must have closed its runs via EndRun).
  void MergeFrom(const InvariantChecker& other);

  // Multi-line report: per-invariant counts plus every retained violation.
  std::string Report() const;

 private:
  // Per-request progress mirror, advanced from scheduled batches only.
  // Keyed by RequestState pointer, not id: a cluster retry round re-simulates
  // a replica on a grown sub-trace, so one run can legitimately contain two
  // attempts of the same request id as distinct RequestState objects.
  struct Shadow {
    int64_t id = -1;
    int64_t prompt_tokens = 0;
    int64_t prefill_target = 0;
    int64_t prefill_done = 0;
    int64_t generated = 0;
    bool in_flight = false;    // Inside a scheduled, not-yet-applied batch.
    bool closed = false;       // Finished or aborted.
    bool migrated_in = false;  // Adopted via live migration, no recompute since.
    // QoS no-starvation bookkeeping: lane, arrival, whether the request is
    // currently waiting in the queue, and a monotone enqueue order stamp
    // (retry attempts can be enqueued late with an early arrival time, so
    // arrival alone cannot order admissions).
    bool batch_lane = false;
    double arrival_s = 0.0;
    bool waiting = false;
    int64_t enqueue_seq = -1;
  };

  void AddViolation(Invariant invariant, int64_t request_id, std::string message);
  // Runs the allocator self-audit and the live-sequence cross-check.
  void AuditKv(const char* where);
  // QoS-lane admission-order check (see the no-starvation invariant above);
  // called on every kAdmit with the admitted request's shadow.
  void CheckNoStarvation(const RequestState* request, const Shadow& shadow);
  void CheckBatchSanity(const ScheduledBatch& batch);
  void CheckTokenBudget(const ScheduledBatch& batch);
  void CheckStallFree(const ScheduledBatch& batch);

  Options options_;
  FlightRecorder* flight_ = nullptr;
  std::vector<Violation> violations_;
  int64_t total_violations_ = 0;
  int64_t total_iterations_ = 0;
  int64_t runs_ = 0;

  // ---- Per-run state (reset by BeginRun) ----
  const Scheduler* scheduler_ = nullptr;
  const KvAllocator* allocator_ = nullptr;
  std::string run_label_;
  int64_t iteration_ = 0;
  double last_schedule_s_ = 0.0;
  double last_apply_s_ = 0.0;
  bool any_scheduled_ = false;
  bool any_applied_ = false;
  std::unordered_map<const RequestState*, Shadow> shadows_;
  std::unordered_set<int64_t> live_kv_;
  int64_t enqueue_counter_ = 0;
};

}  // namespace sarathi

#endif  // SRC_VERIFY_INVARIANT_CHECKER_H_
