// Closed-loop overload controller.
//
// Reads three pressure signals — head-of-line queue delay, windowed P99 TBT,
// and KV high-water utilization — and drives a hysteresis-guarded degradation
// ladder. The controller itself is pure state-machine logic (no clocks, no
// I/O): the simulator feeds it the signals at every scheduling point and acts
// on the returned level. docs/overload.md describes the design and tuning.

#ifndef SRC_ROBUSTNESS_OVERLOAD_CONTROLLER_H_
#define SRC_ROBUSTNESS_OVERLOAD_CONTROLLER_H_

#include <cstdint>
#include <string_view>

#include "src/obs/obs_hooks.h"
#include "src/scheduler/scheduler.h"

namespace sarathi {

// Pressure signals sampled at a scheduling point. A disabled signal (no TBT
// SLO configured, no queued work) reads as zero and never escalates.
struct OverloadSignals {
  double queue_delay_s = 0.0;   // wait of the oldest queued request
  double p99_tbt_s = 0.0;       // P99 inter-token latency over the last window
  double kv_utilization = 0.0;  // allocator units in use / total
};

struct OverloadControllerOptions {
  // Queue-delay rungs (seconds of head-of-line wait) for entering each level.
  double queue_delay_throughput_s = 0.5;
  double queue_delay_brownout_s = 2.0;
  double queue_delay_shed_s = 6.0;
  // TBT rungs as multiples of tbt_slo_s; tbt_slo_s == 0 disables the signal.
  double tbt_slo_s = 0.0;
  double tbt_throughput_factor = 1.0;
  double tbt_brownout_factor = 2.0;
  double tbt_shed_factor = 4.0;
  // KV-utilization rungs.
  double kv_throughput = 0.85;
  double kv_brownout = 0.95;
  double kv_shed = 0.99;
  // Hysteresis: a level is left only once every signal drops below
  // enter_threshold * exit_ratio, and only after min_dwell_s at the current
  // level. Recovery steps down one rung at a time (smooth recovery).
  double exit_ratio = 0.7;
  double min_dwell_s = 1.0;
};

class OverloadController {
 public:
  explicit OverloadController(const OverloadControllerOptions& options);

  // Feeds one signal sample; returns the (possibly new) ladder level.
  // Escalation is immediate; de-escalation is dwell- and hysteresis-gated.
  OverloadLevel Update(double now_s, const OverloadSignals& signals);

  OverloadLevel level() const { return level_; }
  // Total level changes and how many of them were escalations.
  int64_t transitions() const { return transitions_; }
  int64_t escalations() const { return escalations_; }

  // Observability (may be null): every rung transition emits a counter-track
  // sample ("overload_rung", so Perfetto plots the ladder as a step function)
  // and transition/escalation counters.
  void set_obs(const ObsHooks* obs) { obs_ = obs; }

 private:
  void EmitTransition(double now_s, bool escalation);

  // Highest rung any signal clears; `scale` shrinks the thresholds (used with
  // exit_ratio to decide whether the current level is still warranted).
  OverloadLevel SignalLevel(const OverloadSignals& signals, double scale) const;

  OverloadControllerOptions options_;
  const ObsHooks* obs_ = nullptr;
  OverloadLevel level_ = OverloadLevel::kNormal;
  double last_change_s_ = 0.0;
  int64_t transitions_ = 0;
  int64_t escalations_ = 0;
};

// Replica-level overload-control configuration. Everything defaults off: a
// default-constructed OverloadOptions leaves the simulator byte-identical to
// its pre-overload behavior.
struct OverloadOptions {
  // SLO-aware admission: shed an arrival whose predicted TTFT exceeds
  // min(admission_ttft_slo_s, its remaining deadline). 0 disables.
  double admission_ttft_slo_s = 0.0;
  // CoDel bounded queue: drop the oldest queued request once head-of-line
  // delay stays above this target for a full interval. 0 disables.
  double queue_limit_s = 0.0;
  double codel_interval_s = 1.0;
  // Enables the OverloadController ladder (budget growth, hedge suspension,
  // batch-lane output caps and batch-lane shedding under pressure).
  bool brownout = false;
  OverloadControllerOptions controller;
  // Output-token cap applied to batch-lane arrivals at kBrownout and above.
  int64_t brownout_output_cap = 32;

  bool enabled() const {
    return admission_ttft_slo_s > 0.0 || queue_limit_s > 0.0 || brownout;
  }
};

}  // namespace sarathi

#endif  // SRC_ROBUSTNESS_OVERLOAD_CONTROLLER_H_
