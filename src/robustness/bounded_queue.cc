#include "src/robustness/bounded_queue.h"

#include <cmath>

#include "src/common/logging.h"

namespace sarathi {

CoDelQueue::CoDelQueue(const CoDelOptions& options) : options_(options) {
  CHECK(options_.target_s > 0.0) << "CoDel target must be positive";
  CHECK(options_.interval_s > 0.0) << "CoDel interval must be positive";
}

double CoDelQueue::ControlLaw(double t) const {
  return t + options_.interval_s / std::sqrt(static_cast<double>(count_));
}

bool CoDelQueue::ShouldDrop(double head_delay_s, double now_s) {
  if (head_delay_s < options_.target_s) {
    // Delay recovered: leave the dropping state and forget the episode.
    first_above_time_s_ = 0.0;
    dropping_ = false;
    return false;
  }
  if (dropping_) {
    if (now_s < drop_next_s_) {
      return false;
    }
    ++count_;
    ++drops_;
    drop_next_s_ = ControlLaw(drop_next_s_);
    EmitDrop(head_delay_s, now_s);
    return true;
  }
  if (first_above_time_s_ == 0.0) {
    first_above_time_s_ = now_s + options_.interval_s;
    return false;
  }
  if (now_s < first_above_time_s_) {
    return false;
  }
  // Delay has been above target for a full interval: enter the dropping
  // state. Resume near the previous episode's drop rate if it ended recently
  // (the standard CoDel "count memory" that speeds re-convergence).
  dropping_ = true;
  int64_t delta = count_ - last_count_;
  count_ = delta > 1 ? delta : 1;
  last_count_ = count_;
  ++drops_;
  drop_next_s_ = ControlLaw(now_s);
  EmitDrop(head_delay_s, now_s);
  return true;
}

void CoDelQueue::EmitDrop(double head_delay_s, double now_s) {
  if (obs_ == nullptr) {
    return;
  }
  if (Tracer* tracer = obs_->ActiveTracer()) {
    tracer->Instant("overload", "codel_head_drop", now_s,
                    {Arg("head_delay_s", head_delay_s), Arg("episode_drops", count_)});
  }
  if (obs_->metrics != nullptr) {
    obs_->metrics->AddCount("codel_head_drops", now_s);
  }
}

}  // namespace sarathi
