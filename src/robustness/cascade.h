// Cascade breaker + slow-start re-admission: the recovery orchestration that
// keeps a partial-capacity cluster out of the metastable regime.
//
// When a failure domain takes out a quarter of the fleet, the router happily
// redistributes the full offered load onto the survivors. If offered load
// exceeds surviving capacity, queues grow without bound, every admitted
// request times out after consuming service, and the timeouts feed a
// synchronized retry storm — a metastable failure: throughput stays collapsed
// long after the domain comes back, because the backlog plus retry
// amplification keeps the system past its stability boundary ("load exceeds
// capacity" is self-sustaining once client retries re-offer the work).
//
// The breaker is the load->capacity stability check made explicit: it
// compares the offered-load timeline against the surviving-capacity timeline
// (both known to the simulator up front — capacity comes from the memoized
// cost model, outages from the fault schedule) and computes the engaged
// intervals during which the cluster must shed to survivable load. While
// engaged, arrivals pass through a deterministic token bucket at
// headroom * surviving capacity and timeout-retries are denied outright.
// Slow-start staggers each rejoining replica's re-admission ramp so recovery
// itself does not arrive as a thundering herd of queued work and recompute.

#ifndef SRC_ROBUSTNESS_CASCADE_H_
#define SRC_ROBUSTNESS_CASCADE_H_

#include <cstdint>
#include <vector>

namespace sarathi {

struct CascadeBreakerOptions {
  bool enabled = false;
  // Admission target while engaged, as a fraction of surviving capacity.
  // Below 1.0 so the survivors have headroom to drain the backlog.
  double headroom = 0.85;
  // Trip when offered load exceeds this multiple of surviving capacity.
  double trip_utilization = 1.0;
  // Load/capacity comparison window. Smaller reacts faster; larger smooths
  // arrival burstiness.
  double window_s = 2.0;
  // Token-bucket burst while engaged, in seconds of headroom-rate credit.
  double burst_s = 1.0;
};

// One step of a piecewise-constant rate timeline: `rate` holds from t_s until
// the next sample's t_s (or forever for the last).
struct RateSample {
  double t_s = 0.0;
  double rate = 0.0;
};

// One engaged interval of the breaker, absolute simulation time.
struct CascadeInterval {
  double begin_s = 0.0;
  double end_s = 0.0;
};

class CascadeBreaker {
 public:
  explicit CascadeBreaker(const CascadeBreakerOptions& options);

  // Computes the engaged intervals from the offered-load arrivals (time,
  // tokens — must be sorted by time) and the surviving-capacity timeline
  // (piecewise-constant token rate; must be sorted, first sample at t <= 0).
  // A pure function of its inputs: byte-identical across runs and
  // thread-count. Resets any previous build and admission state.
  void Build(const std::vector<RateSample>& arrivals,
             const std::vector<RateSample>& capacity, double horizon_s);

  // True when the breaker is engaged (shedding to survivable load) at `t`.
  bool EngagedAt(double t) const;

  // Admission decision for one arrival of `tokens` at time `t`. Outside
  // engaged intervals everything is admitted; inside, a token bucket refilled
  // at headroom * surviving capacity admits up to survivable load and sheds
  // the rest. MUST be called in non-decreasing `t` order (arrival order),
  // which makes the decision sequence deterministic. Counts sheds.
  bool AdmitArrival(double t, int64_t tokens);

  const std::vector<CascadeInterval>& engaged() const { return engaged_; }
  int64_t sheds() const { return sheds_; }
  // Total time the breaker spent engaged (clamped to the build horizon).
  double engaged_duration_s() const;

 private:
  double CapacityAt(double t) const;

  CascadeBreakerOptions options_;
  std::vector<RateSample> capacity_;
  std::vector<CascadeInterval> engaged_;
  double horizon_s_ = 0.0;
  // Token-bucket admission state (debt model: admit while balance >= 0).
  double bucket_ = 0.0;
  double bucket_t_ = 0.0;
  bool bucket_primed_ = false;
  int64_t sheds_ = 0;
};

struct SlowStartOptions {
  bool enabled = false;
  // Re-admission ramp length per replica: eligibility fraction grows linearly
  // from initial_fraction to 1 over this long after the replica's gate opens.
  double ramp_s = 5.0;
  // Gate stagger between members of the same rejoining domain: member k may
  // not take new work before rejoin + k * stagger_s. Breaks the synchronized
  // re-admission spike of a whole domain coming back at once.
  double stagger_s = 1.0;
  // Eligibility fraction at the moment the gate opens.
  double initial_fraction = 0.25;
};

// The slow-start eligibility fraction of a replica at time `t`, given the
// time its outage/partition ended and its 0-based index within the rejoining
// domain. 0 before the staggered gate opens (the replica takes no new work),
// then a linear ramp from initial_fraction to 1. Returns 1 when disabled or
// once the ramp completes. The router multiplies this into the replica's
// outstanding-work admission cap.
double SlowStartFraction(const SlowStartOptions& options, double rejoin_s,
                         int stagger_index, double t);

}  // namespace sarathi

#endif  // SRC_ROBUSTNESS_CASCADE_H_
