#include "src/robustness/retry_budget.h"

#include <algorithm>

#include "src/common/logging.h"

namespace sarathi {
namespace {

// splitmix64: tiny, well-mixed, and stable across platforms — exactly what a
// replayable jitter source needs.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

RetryBudget::RetryBudget(double ratio, double burst)
    : ratio_(ratio), burst_(burst), balance_(ratio > 0.0 ? burst : 0.0) {
  CHECK(burst >= 0.0) << "retry-budget burst must be non-negative";
}

void RetryBudget::OnRequest(double now_s) {
  if (!enabled()) return;
  balance_ = std::min(burst_, balance_ + ratio_);
  EmitBalance(now_s);
}

bool RetryBudget::TryConsume(double now_s) {
  if (!enabled()) {
    ++consumed_;
    return true;
  }
  // Tolerance absorbs the drift from accumulating fractional credits (e.g.
  // ten 0.1 credits sum to 0.999...), so N admissions at ratio 1/N reliably
  // fund one retry.
  constexpr double kEps = 1e-9;
  if (balance_ < 1.0 - kEps) {
    ++denied_;
    if (obs_ != nullptr && now_s >= 0.0) {
      if (Tracer* tracer = obs_->ActiveTracer()) {
        tracer->Instant("overload", "retry_denied", now_s, {Arg("balance", balance_)});
      }
      if (obs_->metrics != nullptr) {
        obs_->metrics->AddCount("retry_budget_denied", now_s);
      }
    }
    return false;
  }
  balance_ = std::max(0.0, balance_ - 1.0);
  ++consumed_;
  EmitBalance(now_s);
  return true;
}

void RetryBudget::EmitBalance(double now_s) {
  if (obs_ == nullptr || now_s < 0.0 || obs_->metrics == nullptr) {
    return;
  }
  obs_->metrics->SetGauge("retry_budget_balance", now_s, balance_);
}

double FullJitterBackoffS(double base_s, int attempt, int64_t request_id, uint64_t seed) {
  CHECK(base_s > 0.0) << "backoff base must be positive";
  CHECK(attempt >= 0);
  double ceiling = base_s * static_cast<double>(int64_t{1} << std::min(attempt, 30));
  uint64_t h = SplitMix64(seed ^ SplitMix64(static_cast<uint64_t>(request_id) ^
                                            (static_cast<uint64_t>(attempt) << 48)));
  // 53-bit mantissa draw in [0, 1).
  double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return ceiling * u;
}

}  // namespace sarathi
