// CoDel-style bounded queue controller.
//
// Classic controlled-delay AQM adapted to request queues: the queue is
// "standing" (bad) when head-of-line delay stays above a target for a full
// interval; once standing, requests are dropped at 1/sqrt(drop_count)
// intervals until the delay recovers. Only the control state lives here —
// the queue itself stays inside the scheduler, and the simulator acts on
// ShouldDrop by aborting the oldest queued request.

#ifndef SRC_ROBUSTNESS_BOUNDED_QUEUE_H_
#define SRC_ROBUSTNESS_BOUNDED_QUEUE_H_

#include <cstdint>

#include "src/obs/obs_hooks.h"

namespace sarathi {

struct CoDelOptions {
  double target_s = 0.1;    // acceptable standing head-of-line delay
  double interval_s = 1.0;  // how long delay must persist above target
};

class CoDelQueue {
 public:
  explicit CoDelQueue(const CoDelOptions& options);

  // Feeds the current head-of-line delay at simulation time `now_s`.
  // Returns true when the head request should be dropped. Call again with the
  // post-drop delay to drain further (the 1/sqrt schedule limits the rate).
  bool ShouldDrop(double head_delay_s, double now_s);

  int64_t drops() const { return drops_; }
  bool dropping() const { return dropping_; }

  // Observability (may be null): each head drop emits a "codel_head_drop"
  // instant carrying the head delay plus a codel_head_drops counter.
  void set_obs(const ObsHooks* obs) { obs_ = obs; }

 private:
  double ControlLaw(double t) const;
  void EmitDrop(double head_delay_s, double now_s);

  CoDelOptions options_;
  const ObsHooks* obs_ = nullptr;
  // Deadline by which the delay must recover before the first drop; 0 = delay
  // currently below target.
  double first_above_time_s_ = 0.0;
  bool dropping_ = false;
  double drop_next_s_ = 0.0;
  int64_t count_ = 0;       // drops in the current dropping episode
  int64_t last_count_ = 0;  // count when the previous episode ended
  int64_t drops_ = 0;
};

}  // namespace sarathi

#endif  // SRC_ROBUSTNESS_BOUNDED_QUEUE_H_
