#include "src/robustness/overload_controller.h"

#include <algorithm>

#include "src/common/logging.h"

namespace sarathi {

OverloadController::OverloadController(const OverloadControllerOptions& options)
    : options_(options) {
  CHECK(options_.exit_ratio > 0.0 && options_.exit_ratio <= 1.0)
      << "exit_ratio must be in (0, 1], got " << options_.exit_ratio;
  CHECK(options_.min_dwell_s >= 0.0) << "min_dwell_s must be non-negative";
}

OverloadLevel OverloadController::SignalLevel(const OverloadSignals& signals,
                                              double scale) const {
  auto rung = [&](double value, double throughput, double brownout, double shed) {
    if (value >= shed * scale) return OverloadLevel::kShed;
    if (value >= brownout * scale) return OverloadLevel::kBrownout;
    if (value >= throughput * scale) return OverloadLevel::kThroughput;
    return OverloadLevel::kNormal;
  };
  OverloadLevel level = rung(signals.queue_delay_s, options_.queue_delay_throughput_s,
                             options_.queue_delay_brownout_s, options_.queue_delay_shed_s);
  if (options_.tbt_slo_s > 0.0) {
    level = std::max(level, rung(signals.p99_tbt_s, options_.tbt_slo_s * options_.tbt_throughput_factor,
                                 options_.tbt_slo_s * options_.tbt_brownout_factor,
                                 options_.tbt_slo_s * options_.tbt_shed_factor));
  }
  level = std::max(level, rung(signals.kv_utilization, options_.kv_throughput,
                               options_.kv_brownout, options_.kv_shed));
  return level;
}

OverloadLevel OverloadController::Update(double now_s, const OverloadSignals& signals) {
  OverloadLevel enter = SignalLevel(signals, 1.0);
  if (enter > level_) {
    // Escalate immediately — overload is the failure mode we cannot sit on.
    level_ = enter;
    last_change_s_ = now_s;
    ++transitions_;
    ++escalations_;
    EmitTransition(now_s, /*escalation=*/true);
    return level_;
  }
  if (level_ == OverloadLevel::kNormal) {
    return level_;
  }
  // De-escalate one rung at a time, only after min_dwell_s at this level and
  // only once every signal has dropped below exit_ratio of the thresholds
  // that warrant the current level (hysteresis against flapping).
  OverloadLevel hold = SignalLevel(signals, options_.exit_ratio);
  if (hold >= level_ || now_s - last_change_s_ < options_.min_dwell_s) {
    return level_;
  }
  level_ = static_cast<OverloadLevel>(static_cast<int>(level_) - 1);
  last_change_s_ = now_s;
  ++transitions_;
  EmitTransition(now_s, /*escalation=*/false);
  return level_;
}

void OverloadController::EmitTransition(double now_s, bool escalation) {
  if (obs_ == nullptr) {
    return;
  }
  if (Tracer* tracer = obs_->ActiveTracer()) {
    // Counter track: Perfetto renders the ladder as a step function.
    tracer->Counter("overload", "overload_rung", now_s,
                    static_cast<double>(static_cast<int>(level_)));
  }
  if (obs_->metrics != nullptr) {
    obs_->metrics->AddCount("overload_transitions", now_s);
    if (escalation) {
      obs_->metrics->AddCount("overload_escalations", now_s);
    }
  }
}

}  // namespace sarathi
