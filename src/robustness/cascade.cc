#include "src/robustness/cascade.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace sarathi {

CascadeBreaker::CascadeBreaker(const CascadeBreakerOptions& options) : options_(options) {
  options_.headroom = std::min(1.0, std::max(0.05, options_.headroom));
  options_.trip_utilization = std::max(options_.headroom, options_.trip_utilization);
  if (options_.window_s <= 0.0) {
    options_.window_s = 2.0;
  }
  options_.burst_s = std::max(0.0, options_.burst_s);
}

double CascadeBreaker::CapacityAt(double t) const {
  double rate = 0.0;
  for (const RateSample& sample : capacity_) {
    if (sample.t_s > t) {
      break;
    }
    rate = sample.rate;
  }
  return rate;
}

void CascadeBreaker::Build(const std::vector<RateSample>& arrivals,
                           const std::vector<RateSample>& capacity, double horizon_s) {
  capacity_ = capacity;
  engaged_.clear();
  horizon_s_ = horizon_s;
  bucket_ = 0.0;
  bucket_t_ = 0.0;
  bucket_primed_ = false;
  sheds_ = 0;
  if (!options_.enabled || horizon_s <= 0.0) {
    return;
  }
  const double dt = options_.window_s;
  const int64_t num_windows = static_cast<int64_t>(std::ceil(horizon_s / dt));
  // Window-bucketed offered load, tokens per second. `arrivals` carries one
  // sample per request: t_s = arrival, rate = total tokens offered.
  std::vector<double> offered(static_cast<size_t>(num_windows), 0.0);
  for (const RateSample& arrival : arrivals) {
    if (arrival.t_s < 0.0 || arrival.t_s >= horizon_s) {
      continue;
    }
    offered[static_cast<size_t>(arrival.t_s / dt)] += arrival.rate / dt;
  }
  // Walk the windows tracking the un-served backlog. Trip when offered load
  // exceeds trip_utilization x surviving capacity; once engaged, admission is
  // capped at headroom x capacity, so the backlog drains at >= (1 - headroom)
  // x capacity per second. Clear only when the load is back inside the
  // stability boundary AND the backlog has drained — the two conditions that
  // end a metastable episode.
  bool engaged = false;
  double begin_s = 0.0;
  double backlog_tokens = 0.0;
  for (int64_t w = 0; w < num_windows; ++w) {
    const double t0 = static_cast<double>(w) * dt;
    const double cap = CapacityAt(t0 + 0.5 * dt);
    const double off = offered[static_cast<size_t>(w)];
    if (!engaged && cap > 0.0 && off > options_.trip_utilization * cap) {
      engaged = true;
      begin_s = t0;
    }
    const double admitted = engaged ? std::min(off, options_.headroom * cap) : off;
    backlog_tokens = std::max(0.0, backlog_tokens + (admitted - cap) * dt);
    if (engaged && off <= options_.trip_utilization * cap && backlog_tokens <= 1e-9) {
      engaged = false;
      engaged_.push_back(CascadeInterval{begin_s, t0 + dt});
    }
  }
  if (engaged) {
    engaged_.push_back(CascadeInterval{begin_s, horizon_s});
  }
}

bool CascadeBreaker::EngagedAt(double t) const {
  for (const CascadeInterval& interval : engaged_) {
    if (t >= interval.begin_s && t < interval.end_s) {
      return true;
    }
    if (interval.begin_s > t) {
      break;
    }
  }
  return false;
}

bool CascadeBreaker::AdmitArrival(double t, int64_t tokens) {
  if (!EngagedAt(t)) {
    // Bucket state does not persist across disengaged gaps: each engaged
    // interval starts with a fresh burst allowance.
    bucket_primed_ = false;
    return true;
  }
  const double rate = options_.headroom * CapacityAt(t);
  const double burst = options_.burst_s * rate;
  if (!bucket_primed_) {
    bucket_ = burst;
    bucket_primed_ = true;
  } else {
    CHECK_GE(t, bucket_t_) << "cascade admissions must arrive in time order";
    bucket_ = std::min(burst, bucket_ + rate * (t - bucket_t_));
  }
  bucket_t_ = t;
  // Debt model: a request is admitted while the balance is non-negative and
  // then charges its full size, so long-run admitted throughput tracks
  // headroom x capacity no matter how request sizes straddle the refill.
  if (bucket_ < 0.0 || rate <= 0.0) {
    ++sheds_;
    return false;
  }
  bucket_ -= static_cast<double>(tokens);
  return true;
}

double CascadeBreaker::engaged_duration_s() const {
  double total = 0.0;
  for (const CascadeInterval& interval : engaged_) {
    total += std::min(interval.end_s, horizon_s_) - interval.begin_s;
  }
  return total;
}

double SlowStartFraction(const SlowStartOptions& options, double rejoin_s,
                         int stagger_index, double t) {
  if (!options.enabled) {
    return 1.0;
  }
  const double gate_s =
      rejoin_s + static_cast<double>(std::max(0, stagger_index)) * options.stagger_s;
  if (t < gate_s) {
    return 0.0;
  }
  if (options.ramp_s <= 0.0) {
    return 1.0;
  }
  const double initial = std::min(1.0, std::max(0.0, options.initial_fraction));
  const double progress = std::min(1.0, (t - gate_s) / options.ramp_s);
  return initial + (1.0 - initial) * progress;
}

}  // namespace sarathi
