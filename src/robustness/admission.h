// SLO-aware admission: predicts a new arrival's TTFT from the replica's
// current backlog using the memoized IterationCostModel, so infeasible
// requests are shed at the door (with a modeled retry-after) instead of
// rotting in the queue past their deadline.

#ifndef SRC_ROBUSTNESS_ADMISSION_H_
#define SRC_ROBUSTNESS_ADMISSION_H_

#include <cstdint>

#include "src/perfmodel/iteration_cost.h"

namespace sarathi {

class AdmissionPredictor {
 public:
  // `cost_model` must outlive the predictor. `token_budget` is the
  // scheduler's per-iteration token budget (Sarathi tau); other policies pass
  // their effective batch token throughput equivalent.
  AdmissionPredictor(const IterationCostModel* cost_model, int64_t token_budget);

  // Predicted seconds until a new arrival with `prompt_tokens` of prefill
  // emits its first token, given `backlog_prefill_tokens` of queued prefill
  // work ahead of it and `running_decodes` decode slots stealing budget.
  double PredictTtftS(int64_t backlog_prefill_tokens, int64_t running_decodes,
                      int64_t prompt_tokens) const;

  // Modeled retry-after: how long the backlog needs to drain before the same
  // request would be predicted to meet `ttft_slo_s`. Zero when it already
  // would.
  double RetryAfterS(int64_t backlog_prefill_tokens, int64_t running_decodes,
                     int64_t prompt_tokens, double ttft_slo_s) const;

  // Prefill tokens retired per second with `running_decodes` decode slots in
  // every batch (memoized per decode-slot bucket).
  double PrefillRateTokensPerS(int64_t running_decodes) const;

 private:
  const IterationCostModel* cost_model_;
  int64_t token_budget_;
};

}  // namespace sarathi

#endif  // SRC_ROBUSTNESS_ADMISSION_H_
