#include "src/robustness/admission.h"

#include <algorithm>

#include "src/common/logging.h"

namespace sarathi {
namespace {

// Representative decode context for the rate estimate. The cost model memoizes
// per (context, tokens) shape, so quantizing the decode population to a single
// context keeps every predictor call a cache hit after the first.
constexpr int64_t kDecodeContext = 512;
// Decode-slot bucket width: predictions change slowly in the number of decode
// slots, and bucketing keeps the memo table small.
constexpr int64_t kDecodeBucket = 8;

}  // namespace

AdmissionPredictor::AdmissionPredictor(const IterationCostModel* cost_model,
                                       int64_t token_budget)
    : cost_model_(cost_model), token_budget_(token_budget) {
  CHECK(cost_model_ != nullptr);
  CHECK(token_budget_ > 0) << "token budget must be positive";
}

double AdmissionPredictor::PrefillRateTokensPerS(int64_t running_decodes) const {
  int64_t decodes = std::min((std::max<int64_t>(running_decodes, 0) / kDecodeBucket) * kDecodeBucket,
                             token_budget_ - 1);
  int64_t chunk = std::max<int64_t>(token_budget_ - decodes, 1);
  BatchWork batch;
  batch.sequences.reserve(static_cast<size_t>(decodes) + 1);
  for (int64_t i = 0; i < decodes; ++i) {
    batch.sequences.push_back(SequenceWork::Decode(kDecodeContext));
  }
  batch.sequences.push_back(SequenceWork::PrefillChunk(0, chunk));
  double iteration_s = cost_model_->IterationCost(batch).Total();
  CHECK(iteration_s > 0.0) << "cost model returned non-positive iteration time";
  return static_cast<double>(chunk) / iteration_s;
}

double AdmissionPredictor::PredictTtftS(int64_t backlog_prefill_tokens,
                                        int64_t running_decodes,
                                        int64_t prompt_tokens) const {
  double rate = PrefillRateTokensPerS(running_decodes);
  double work = static_cast<double>(std::max<int64_t>(backlog_prefill_tokens, 0) +
                                    std::max<int64_t>(prompt_tokens, 0));
  return work / rate;
}

double AdmissionPredictor::RetryAfterS(int64_t backlog_prefill_tokens,
                                       int64_t running_decodes, int64_t prompt_tokens,
                                       double ttft_slo_s) const {
  double predicted = PredictTtftS(backlog_prefill_tokens, running_decodes, prompt_tokens);
  return std::max(0.0, predicted - ttft_slo_s);
}

}  // namespace sarathi
