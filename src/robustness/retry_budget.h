// Retry-storm damping: a token-bucket retry budget plus deterministic
// full-jitter backoff.
//
// The budget bounds retry amplification to (burst + ratio * admitted
// arrivals) regardless of failure rate, which is what turns a metastable
// retry storm back into a bounded tail. Full jitter decorrelates the retry
// instants so the survivors do not arrive as a thundering herd.

#ifndef SRC_ROBUSTNESS_RETRY_BUDGET_H_
#define SRC_ROBUSTNESS_RETRY_BUDGET_H_

#include <cstdint>

#include "src/obs/obs_hooks.h"

namespace sarathi {

class RetryBudget {
 public:
  // `ratio` retry tokens are credited per admitted request, and the balance
  // is capped at `burst`. ratio <= 0 disables the budget (every retry
  // allowed), matching the pre-overload-control behavior.
  RetryBudget(double ratio, double burst);

  // Credits the budget for one admitted (initially routed) request. Pass the
  // simulation time so the bound registry can track the balance as a gauge;
  // now_s < 0 (the default) skips the emission.
  void OnRequest(double now_s = -1.0);

  // Spends one token for a retry; returns false (and counts a denial) when
  // the bucket is empty.
  bool TryConsume(double now_s = -1.0);

  bool enabled() const { return ratio_ > 0.0; }
  double balance() const { return balance_; }
  int64_t consumed() const { return consumed_; }
  int64_t denied() const { return denied_; }

  // Observability (may be null): balance changes export the
  // retry_budget_balance gauge; denials emit an instant + counter.
  void set_obs(const ObsHooks* obs) { obs_ = obs; }

 private:
  void EmitBalance(double now_s);

  double ratio_;
  double burst_;
  double balance_;
  const ObsHooks* obs_ = nullptr;
  int64_t consumed_ = 0;
  int64_t denied_ = 0;
};

// Deterministic full-jitter exponential backoff: uniform in
// [0, base_s * 2^attempt), keyed by (request_id, attempt, seed) so replays
// are byte-identical. attempt is 0-based.
double FullJitterBackoffS(double base_s, int attempt, int64_t request_id, uint64_t seed);

}  // namespace sarathi

#endif  // SRC_ROBUSTNESS_RETRY_BUDGET_H_
