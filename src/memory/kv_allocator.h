// Admission-control interface over KV-cache memory.
//
// Schedulers consult an allocator to decide whether a new request can join
// the running batch (`can_allocate_request` in the paper's Algorithms 1-3)
// and to grow sequences as decodes append tokens. Two implementations exist:
// the vLLM-style paged manager (PagedBlockManager) and the Orca-style
// max-length reservation manager (ReservationAllocator) — the paper's
// explanation of Orca's small effective batch size (§5.1).

#ifndef SRC_MEMORY_KV_ALLOCATOR_H_
#define SRC_MEMORY_KV_ALLOCATOR_H_

#include <cstdint>
#include <string>
#include <vector>

namespace sarathi {

struct ObsHooks;

using SeqId = int64_t;

class KvAllocator {
 public:
  virtual ~KvAllocator() = default;

  // Observability: when set, implementations emit KV accounting events
  // (admit/release/copy-on-write instants and the blocks-in-use counter)
  // against the hook's driver-maintained clock. Null disables emission at the
  // cost of one branch per mutation.
  void set_obs(ObsHooks* obs) { obs_ = obs; }

  // Whether a request with `prompt_len` prompt tokens (and up to
  // `max_total_len` total tokens over its lifetime) can be admitted now.
  virtual bool CanAdmit(int64_t prompt_len, int64_t max_total_len) const = 0;

  // Sequence-aware admission probe. Identical to CanAdmit by default; a
  // prefix-caching allocator overrides it to credit blocks the sequence
  // already holds pinned from a prefix-cache hit (and blocks it could evict),
  // so a mostly-cached prompt admits under memory pressure that would reject
  // a cold one. Schedulers call this form when they know the sequence id.
  virtual bool CanAdmitSeq(SeqId /*id*/, int64_t prompt_len, int64_t max_total_len) const {
    return CanAdmit(prompt_len, max_total_len);
  }

  // Admits the sequence and reserves memory for its prompt. Must only be
  // called when CanAdmit (or CanAdmitSeq for the same id) returned true.
  virtual void Admit(SeqId id, int64_t prompt_len, int64_t max_total_len) = 0;

  // Whether one more token can be appended to the sequence.
  virtual bool CanAppendToken(SeqId id) const = 0;

  // Appends one generated token's KV entry.
  virtual void AppendToken(SeqId id) = 0;

  // Releases everything held by the sequence (finish or preemption).
  virtual void Release(SeqId id) = 0;

  // Terminal release for a sequence that finished normally. Identical to
  // Release by default; a prefix-caching allocator overrides it to retain the
  // sequence's full KV blocks in its radix index before dropping the
  // sequence's own references, so future requests sharing the prefix skip
  // recompute. Preemption keeps using plain Release (the blocks' contents are
  // also retained-eligible, but the simple policy is retain-on-finish only).
  virtual void ReleaseFinished(SeqId id) { Release(id); }

  // A request that was never admitted (still queued) is leaving the system —
  // abort, shed, crash drain. No-op by default; a prefix-caching allocator
  // releases any prefix pin the request acquired at enqueue. Also safe to
  // call after Release for admitted sequences (clears per-sequence cache
  // metadata).
  virtual void OnRequestDropped(SeqId /*id*/) {}

  // Allocation units currently held by a prefix cache (retained blocks that
  // no live sequence references exclusively). 0 for cache-less allocators.
  virtual int64_t cached_units() const { return 0; }

  // Occupancy introspection for metrics.
  virtual double Utilization() const = 0;

  // Allocation units currently in use and the total capacity, in the
  // allocator's own granularity: physical blocks for the paged manager,
  // reserved token slots for the reservation allocator. Drives the KV
  // high-water mark (peak used / total) in SimResult.
  virtual int64_t used_units() const = 0;
  virtual int64_t total_units() const = 0;

  // Number of sequences currently admitted (cross-checked by the invariant
  // checker against its own shadow set of live sequences).
  virtual int64_t num_sequences() const = 0;

  // Self-audit of internal bookkeeping: every block accounted for exactly
  // once (free list xor reference from a table), refcounts consistent,
  // per-sequence token/block arithmetic intact. Returns an empty string when
  // consistent, else a human-readable description of the first inconsistency
  // found. O(capacity) — meant for tests and fuzzing, not the serving path.
  virtual std::string AuditInvariants() const = 0;

  // Prefix-cache structural self-audit: every cached block referenced exactly
  // once by the radix index (live sequences add their own references on top),
  // index chains intact, pins consistent. Empty string for cache-less
  // allocators and for a consistent cache; else the first inconsistency.
  virtual std::string AuditCache() const { return ""; }

 protected:
  ObsHooks* obs_ = nullptr;
};

}  // namespace sarathi

#endif  // SRC_MEMORY_KV_ALLOCATOR_H_
