// Radix prefix cache layered over the paged block manager.
//
// SGLang-style shared-prefix KV reuse: when a sequence finishes, the full
// blocks of its token chain are retained in a radix index (one node per
// block-sized token chunk, keyed by the chunk's token ids) instead of being
// freed outright; each retained block carries one extra reference owned by
// the index. A new request resolves its longest full-block prefix match
// *before* it is enqueued (PinPrefix): matched blocks are refcount-pinned so
// eviction cannot free them while the request waits, and at admission the
// pinned chain is transplanted into the sequence's block table — prefill
// starts at the matched boundary with zero recompute, exactly as a Fork()
// shares prompt KV between parallel samples.
//
// Matches are capped one token short of the prompt (largest block multiple
// <= prompt_len - 1) so every request keeps at least one prefill token: the
// engine still needs a forward pass to produce the first output token, and a
// block-aligned boundary means a hit never triggers copy-on-write (writes
// land strictly past the shared blocks).
//
// Eviction is LRU over unreferenced leaves: a node whose block refcount is 1
// (only the index holds it) and that has no children may be evicted; because
// any sequence or pin that references a node also references all of its
// ancestors, refcount-1 subtrees are exactly the reclaimable ones and
// leaf-first eviction never breaks a chain a live sequence still maps. The
// allocator evicts on demand — admission and decode append treat evictable
// blocks as free-after-eviction, so decode allocation never starves behind
// retained cache (the watermark check applies to the post-eviction pool).
//
// Sliding-window attention recycles block contents in place, which destroys
// the position->block identity the index depends on; construction therefore
// requires sliding_window == 0 (the simulator falls back to the plain paged
// manager for windowed models).

#ifndef SRC_MEMORY_PREFIX_CACHE_H_
#define SRC_MEMORY_PREFIX_CACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/memory/block_manager.h"

namespace sarathi {

class PrefixCachingAllocator final : public PagedBlockManager {
 public:
  struct CacheStats {
    int64_t lookups = 0;          // PinPrefix calls.
    int64_t hits = 0;             // Lookups that matched >= 1 block.
    int64_t cached_tokens = 0;    // Prefill tokens served from the cache.
    int64_t retained_blocks = 0;  // Nodes inserted by finish-time retention.
    int64_t evictions = 0;        // Nodes evicted under allocation pressure.
    int64_t peak_cached_blocks = 0;
  };

  explicit PrefixCachingAllocator(const Options& options);

  // ---- Prefix resolution (the driver calls this right before Enqueue) ----
  //
  // Registers the request's token ids (prompt followed by output; may be
  // null/short — then only retention below the covered length happens) and
  // walks the radix index for the longest full-block prefix match, capped at
  // prompt_len - 1 tokens. Matched blocks are pinned (one extra reference
  // each) until Admit(id) consumes the pin or OnRequestDropped(id) releases
  // it. Returns the matched token count (a multiple of block_size, possibly
  // 0). Must be called at most once per sequence id, before Admit.
  int64_t PinPrefix(SeqId id, std::shared_ptr<const std::vector<int32_t>> tokens,
                    int64_t prompt_len);

  // Matched tokens a pending pin holds for `id` (0 when none) — what Admit
  // will transplant. The driver uses this to pre-set the request's prefill
  // progress.
  int64_t PinnedTokens(SeqId id) const;

  // KvAllocator / PagedBlockManager:
  bool CanAdmit(int64_t prompt_len, int64_t max_total_len) const override;
  bool CanAdmitSeq(SeqId id, int64_t prompt_len, int64_t max_total_len) const override;
  void Admit(SeqId id, int64_t prompt_len, int64_t max_total_len) override;
  bool CanAppendToken(SeqId id) const override;
  void AppendToken(SeqId id) override;
  void ReleaseFinished(SeqId id) override;
  void OnRequestDropped(SeqId id) override;
  int64_t cached_units() const override { return cached_count_; }
  std::string AuditInvariants() const override;
  std::string AuditCache() const override;

  // Evicts every reclaimable node until the index only holds blocks live
  // sequences still share (normally: until empty). The end-of-run zero-leak
  // audit calls this after the last request is terminal — snapshot stats()
  // first, drained evictions are not counted in CacheStats::evictions.
  // Returns the number of blocks released.
  int64_t DrainCache();

  const CacheStats& stats() const { return stats_; }
  int64_t cached_blocks() const { return cached_count_; }
  // Reclaimable right now: cached nodes no sequence or pin references.
  int64_t evictable_blocks() const;

 private:
  struct Node {
    Node* parent = nullptr;
    uint64_t key = 0;     // Hash key in parent->children.
    int64_t block = -1;   // Physical block held (one index reference).
    std::vector<int32_t> chunk;  // The block_size token ids this node covers.
    uint64_t stamp = 0;   // LRU: last touch tick (unique per touch).
    // Ordered by hash for deterministic traversal/eviction.
    std::map<uint64_t, std::unique_ptr<Node>> children;
  };

  struct Pin {
    std::vector<Node*> nodes;  // Matched chain, root-adjacent first.
  };

  // True when at least `want` blocks are reclaimable (early-exit count).
  bool HasEvictable(int64_t want) const;
  // Evicts the least-recently-touched reclaimable leaf; false if none.
  bool EvictOne();
  void Touch(Node* node) { node->stamp = ++stamp_counter_; }
  int64_t WatermarkBlocks() const;

  Node root_;
  int64_t cached_count_ = 0;
  uint64_t stamp_counter_ = 0;
  CacheStats stats_;
  std::unordered_map<SeqId, Pin> pins_;
  // Token ids per known sequence, kept until the sequence is terminal so
  // finish-time retention can key the chain (survives preempt/recompute).
  std::unordered_map<SeqId, std::shared_ptr<const std::vector<int32_t>>> seq_tokens_;
};

}  // namespace sarathi

#endif  // SRC_MEMORY_PREFIX_CACHE_H_
