// PagedAttention-style KV-cache block manager.
//
// KV memory is carved into fixed-size blocks of `block_size` tokens. Each
// sequence owns a block table mapping its logical token positions to physical
// blocks; blocks are allocated on admission (covering the prompt) and one at
// a time as decodes cross block boundaries. A watermark keeps a sliver of
// blocks free so running decodes aren't starved the moment a prefill fills
// memory. Models with sliding-window attention (Mistral-7B) retain only the
// window's worth of blocks; older blocks are recycled in place.
//
// Blocks are reference-counted, which enables PagedAttention's hallmark
// sharing: Fork() gives a child sequence the parent's table without copying
// any KV (parallel sampling / beam-search style divergence); writes to a
// shared block first go through copy-on-write (MakeWritable / the CowOps
// returned by AppendToken), with the actual data copy performed by the
// engine that owns the KV values.

#ifndef SRC_MEMORY_BLOCK_MANAGER_H_
#define SRC_MEMORY_BLOCK_MANAGER_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/memory/kv_allocator.h"

namespace sarathi {

class PagedBlockManager : public KvAllocator {
 public:
  struct Options {
    int64_t num_blocks = 0;
    int64_t block_size = 16;  // Tokens per block (vLLM's default).
    // Fraction of blocks kept free when admitting new sequences.
    double watermark = 0.01;
    // Sliding-window span in tokens (0 = retain everything).
    int64_t sliding_window = 0;
  };

  explicit PagedBlockManager(const Options& options);

  // A copy-on-write event: the sequence's `block_index`-th table entry moved
  // from `old_block` to a fresh `new_block`; the engine must copy the KV
  // values before writing new entries into it.
  struct CowOp {
    int64_t block_index = 0;
    int64_t old_block = 0;
    int64_t new_block = 0;
  };

  // KvAllocator:
  bool CanAdmit(int64_t prompt_len, int64_t max_total_len) const override;
  void Admit(SeqId id, int64_t prompt_len, int64_t max_total_len) override;
  bool CanAppendToken(SeqId id) const override;
  void AppendToken(SeqId id) override;
  void Release(SeqId id) override;
  double Utilization() const override;
  int64_t used_units() const override { return used_blocks(); }
  int64_t total_units() const override { return options_.num_blocks; }
  int64_t num_sequences() const override { return static_cast<int64_t>(tables_.size()); }
  std::string AuditInvariants() const override;

  // ---- Sharing / copy-on-write ----

  // Whether a fork of `id` can be admitted (forking consumes no blocks, but
  // the child must be a new sequence).
  bool CanFork(SeqId id) const;
  // Creates `child` sharing every block of `parent` (refcounts bumped).
  void Fork(SeqId parent, SeqId child);
  // Ensures the block holding logical token `pos` is exclusively owned,
  // copy-on-writing it if shared. Returns the CoW op performed, if any.
  // Requires a free block when a copy is needed.
  std::optional<CowOp> MakeWritable(SeqId id, int64_t pos);
  // Like AppendToken, but also guarantees the written-to block is exclusive;
  // returns any CoW performed.
  std::optional<CowOp> AppendTokenCow(SeqId id);
  // CoW events performed implicitly by AppendToken() on forked sequences
  // since the last drain, in order. The engine that owns KV values must
  // apply the corresponding data copies before writing. Only ever non-empty
  // after Fork() has been used.
  std::vector<std::pair<SeqId, CowOp>> TakePendingCows();
  // Reference count of a physical block (diagnostics/tests).
  int32_t BlockRefCount(int64_t block) const;

  // Blocks needed to hold `tokens` tokens (after window clamping).
  int64_t BlocksForTokens(int64_t tokens) const;

  int64_t num_blocks() const { return options_.num_blocks; }
  int64_t block_size() const { return options_.block_size; }
  int64_t free_blocks() const { return static_cast<int64_t>(free_list_.size()); }
  int64_t used_blocks() const { return options_.num_blocks - free_blocks(); }
  bool HasSequence(SeqId id) const { return tables_.contains(id); }

  // The sequence's physical block table, in logical order.
  const std::vector<int64_t>& BlockTable(SeqId id) const;
  // Logical token count of the sequence.
  int64_t SequenceTokens(SeqId id) const;

 protected:
  // Internals are protected (not private) so PrefixCachingAllocator can layer
  // a radix index over the same block pool without duplicating the
  // refcount/free-list machinery.
  struct SequenceState {
    std::vector<int64_t> blocks;
    int64_t num_tokens = 0;
  };

  // Looks up a sequence's state, memoizing the last (id -> state) pair: the
  // scheduler's per-token hot path probes CanAppendToken and then AppendToken
  // for the same sequence back to back, so the memo removes most hash
  // lookups. unordered_map element addresses survive rehashing, so the memo
  // only needs invalidation when an entry can disappear (Release).
  SequenceState& FindState(SeqId id) const;
  // MakeWritable body for a state already in hand (AppendToken has it).
  std::optional<CowOp> MakeWritableAt(SequenceState& state, SeqId id, int64_t pos);

  int64_t AllocateBlock();
  // Drops one reference; the block returns to the free list at zero.
  void ReleaseBlockRef(int64_t block);
  // Logical token position -> index into the sequence's block table.
  int64_t BlockIndexFor(int64_t pos) const;
  // Emits the blocks-in-use counter (when it changed) and an optional named
  // instant for this sequence. No-op without obs hooks.
  void EmitKvObs(const char* event, SeqId id);

  Options options_;
  mutable SeqId hot_id_ = 0;
  mutable SequenceState* hot_state_ = nullptr;
  int64_t last_emitted_used_ = -1;
  std::vector<int64_t> free_list_;
  std::vector<int32_t> refcount_;
  std::unordered_map<SeqId, SequenceState> tables_;
  std::vector<std::pair<SeqId, CowOp>> pending_cows_;
};

// Orca-style allocator: without paged memory, every admitted request reserves
// KV space for the model's maximum sequence length up front, so concurrency
// is capped at total_tokens / max_seq_len regardless of actual lengths.
class ReservationAllocator : public KvAllocator {
 public:
  ReservationAllocator(int64_t capacity_tokens, int64_t max_seq_len);

  bool CanAdmit(int64_t prompt_len, int64_t max_total_len) const override;
  void Admit(SeqId id, int64_t prompt_len, int64_t max_total_len) override;
  bool CanAppendToken(SeqId id) const override;
  void AppendToken(SeqId id) override;
  void Release(SeqId id) override;
  double Utilization() const override;
  // Units are reserved token slots: every admission pins max_seq_len worth.
  int64_t used_units() const override { return num_admitted() * max_seq_len_; }
  int64_t total_units() const override { return max_concurrent_ * max_seq_len_; }
  int64_t num_sequences() const override { return num_admitted(); }
  std::string AuditInvariants() const override;

  int64_t max_concurrent() const { return max_concurrent_; }
  int64_t num_admitted() const { return static_cast<int64_t>(admitted_.size()); }

 private:
  int64_t max_seq_len_;
  int64_t max_concurrent_;
  std::unordered_map<SeqId, int64_t> admitted_;  // id -> current tokens.
};

}  // namespace sarathi

#endif  // SRC_MEMORY_BLOCK_MANAGER_H_
