#include "src/memory/prefix_cache.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "src/common/logging.h"
#include "src/obs/obs_hooks.h"

namespace sarathi {

namespace {

// FNV-1a over the chunk's token ids. Children are keyed by this hash and
// verified against the stored chunk on lookup, so a collision degrades to a
// miss, never to false sharing.
uint64_t HashChunk(const int32_t* tokens, int64_t count) {
  uint64_t hash = 1469598103934665603ULL;
  for (int64_t i = 0; i < count; ++i) {
    auto value = static_cast<uint32_t>(tokens[i]);
    for (int shift = 0; shift < 32; shift += 8) {
      hash ^= (value >> shift) & 0xffu;
      hash *= 1099511628211ULL;
    }
  }
  return hash;
}

void NotifyKv(ObsHooks* obs, KvVerifyEvent event, SeqId id) {
  if (obs != nullptr && obs->verify != nullptr) {
    obs->verify->OnKvEvent(event, id);
  }
}

}  // namespace

PrefixCachingAllocator::PrefixCachingAllocator(const Options& options)
    : PagedBlockManager(options) {
  CHECK_EQ(options.sliding_window, 0)
      << "prefix caching requires position-stable blocks; sliding-window "
         "models recycle block contents in place";
}

int64_t PrefixCachingAllocator::WatermarkBlocks() const {
  return static_cast<int64_t>(
      std::ceil(options_.watermark * static_cast<double>(options_.num_blocks)));
}

int64_t PrefixCachingAllocator::PinPrefix(
    SeqId id, std::shared_ptr<const std::vector<int32_t>> tokens, int64_t prompt_len) {
  CHECK(!pins_.contains(id)) << "sequence " << id << " already pinned";
  CHECK(!tables_.contains(id)) << "sequence " << id << " already admitted";
  CHECK(!seq_tokens_.contains(id)) << "sequence " << id << " already registered";
  ++stats_.lookups;
  if (tokens == nullptr || tokens->empty()) {
    return 0;
  }
  seq_tokens_.emplace(id, tokens);
  // Match whole blocks only, and never the entire prompt: at least one
  // prefill token must remain so the request still produces its first output
  // token through a forward pass.
  int64_t covered = std::min<int64_t>(prompt_len - 1, static_cast<int64_t>(tokens->size()));
  int64_t max_blocks = covered < 0 ? 0 : covered / options_.block_size;
  Pin pin;
  Node* node = &root_;
  for (int64_t d = 0; d < max_blocks; ++d) {
    const int32_t* chunk = tokens->data() + d * options_.block_size;
    uint64_t key = HashChunk(chunk, options_.block_size);
    auto it = node->children.find(key);
    if (it == node->children.end() ||
        !std::equal(chunk, chunk + options_.block_size, it->second->chunk.begin(),
                    it->second->chunk.end())) {
      break;
    }
    node = it->second.get();
    ++refcount_[static_cast<size_t>(node->block)];  // Pin: eviction-proof.
    Touch(node);
    pin.nodes.push_back(node);
  }
  if (pin.nodes.empty()) {
    return 0;
  }
  ++stats_.hits;
  int64_t matched = static_cast<int64_t>(pin.nodes.size()) * options_.block_size;
  stats_.cached_tokens += matched;
  pins_.emplace(id, std::move(pin));
  return matched;
}

int64_t PrefixCachingAllocator::PinnedTokens(SeqId id) const {
  auto it = pins_.find(id);
  if (it == pins_.end()) {
    return 0;
  }
  return static_cast<int64_t>(it->second.nodes.size()) * options_.block_size;
}

bool PrefixCachingAllocator::HasEvictable(int64_t want) const {
  if (want <= 0) {
    return true;
  }
  // Reclaimable nodes are exactly those with block refcount 1 (index-only):
  // any sequence or pin referencing a node also references its ancestors, so
  // refcount-1 subtrees contain no shared blocks. DFS with early exit.
  int64_t found = 0;
  std::vector<const Node*> stack{&root_};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    for (const auto& [key, child] : node->children) {
      if (refcount_[static_cast<size_t>(child->block)] == 1 && ++found >= want) {
        return true;
      }
      stack.push_back(child.get());
    }
  }
  return false;
}

int64_t PrefixCachingAllocator::evictable_blocks() const {
  int64_t found = 0;
  std::vector<const Node*> stack{&root_};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    for (const auto& [key, child] : node->children) {
      if (refcount_[static_cast<size_t>(child->block)] == 1) {
        ++found;
      }
      stack.push_back(child.get());
    }
  }
  return found;
}

bool PrefixCachingAllocator::EvictOne() {
  // LRU over reclaimable leaves. A refcount-1 interior node only becomes a
  // leaf after its (also refcount-1) descendants go, so chains a live
  // sequence still maps are never broken.
  Node* victim = nullptr;
  std::vector<Node*> stack{&root_};
  while (!stack.empty()) {
    Node* node = stack.back();
    stack.pop_back();
    for (auto& [key, child] : node->children) {
      if (child->children.empty() &&
          refcount_[static_cast<size_t>(child->block)] == 1 &&
          (victim == nullptr || child->stamp < victim->stamp)) {
        victim = child.get();
      }
      stack.push_back(child.get());
    }
  }
  if (victim == nullptr) {
    return false;
  }
  ReleaseBlockRef(victim->block);  // Refcount 1 -> 0: back on the free list.
  --cached_count_;
  ++stats_.evictions;
  victim->parent->children.erase(victim->key);
  EmitKvObs("kv_prefix_evict", -1);
  return true;
}

bool PrefixCachingAllocator::CanAdmit(int64_t prompt_len, int64_t /*max_total_len*/) const {
  int64_t needed = BlocksForTokens(prompt_len);
  int64_t shortfall = needed + WatermarkBlocks() - free_blocks();
  return shortfall <= 0 || HasEvictable(shortfall);
}

bool PrefixCachingAllocator::CanAdmitSeq(SeqId id, int64_t prompt_len,
                                         int64_t /*max_total_len*/) const {
  // Pinned blocks transplant into the table without allocation; only the
  // uncached remainder needs free (or evictable) blocks.
  auto it = pins_.find(id);
  int64_t pinned = it == pins_.end() ? 0 : static_cast<int64_t>(it->second.nodes.size());
  int64_t fresh = BlocksForTokens(prompt_len) - pinned;
  int64_t shortfall = fresh + WatermarkBlocks() - free_blocks();
  return shortfall <= 0 || HasEvictable(shortfall);
}

void PrefixCachingAllocator::Admit(SeqId id, int64_t prompt_len, int64_t max_total_len) {
  CHECK(!tables_.contains(id)) << "sequence " << id << " already admitted";
  CHECK(CanAdmitSeq(id, prompt_len, max_total_len));
  std::vector<Node*> matched;
  auto pin_it = pins_.find(id);
  if (pin_it != pins_.end()) {
    matched = std::move(pin_it->second.nodes);
    pins_.erase(pin_it);
  }
  int64_t needed = BlocksForTokens(prompt_len);
  int64_t fresh = needed - static_cast<int64_t>(matched.size());
  CHECK_GE(fresh, 1) << "a match must leave at least one uncached prompt block";
  while (free_blocks() < fresh + WatermarkBlocks() && EvictOne()) {
  }
  CHECK_GE(free_blocks(), fresh) << "admitted past capacity";
  SequenceState state;
  state.blocks.reserve(
      static_cast<size_t>(std::max(needed, BlocksForTokens(max_total_len))));
  // The pin's extra reference becomes the table's reference: no net change.
  for (Node* node : matched) {
    state.blocks.push_back(node->block);
  }
  for (int64_t i = 0; i < fresh; ++i) {
    state.blocks.push_back(AllocateBlock());
  }
  state.num_tokens = prompt_len;
  tables_.emplace(id, std::move(state));
  NotifyKv(obs_, KvVerifyEvent::kAdmit, id);
  EmitKvObs("kv_admit", id);
}

bool PrefixCachingAllocator::CanAppendToken(SeqId id) const {
  // Decode allocation must never starve behind retained cache: when the base
  // answer is no (no free block for growth or copy-on-write), one eviction
  // frees one.
  return PagedBlockManager::CanAppendToken(id) || HasEvictable(1);
}

void PrefixCachingAllocator::AppendToken(SeqId id) {
  if (free_blocks() == 0) {
    const SequenceState& state = FindState(id);
    bool needs_block =
        BlocksForTokens(state.num_tokens + 1) > static_cast<int64_t>(state.blocks.size());
    if (!needs_block) {
      int64_t block = state.blocks[static_cast<size_t>(BlockIndexFor(state.num_tokens))];
      needs_block = refcount_[static_cast<size_t>(block)] > 1;  // Copy-on-write.
    }
    if (needs_block) {
      CHECK(EvictOne()) << "AppendToken without a free or evictable block";
    }
  }
  PagedBlockManager::AppendToken(id);
}

void PrefixCachingAllocator::ReleaseFinished(SeqId id) {
  auto tok_it = seq_tokens_.find(id);
  if (tok_it != seq_tokens_.end() && tok_it->second != nullptr) {
    const std::vector<int32_t>& tokens = *tok_it->second;
    const SequenceState& state = FindState(id);
    // Retain the chain of full blocks whose token ids are known. Position p's
    // KV corresponds to tokens[p] even across preemption-recompute (the
    // regenerated tokens are the same), so the chain stays content-addressed.
    int64_t covered = std::min(state.num_tokens, static_cast<int64_t>(tokens.size()));
    int64_t retain = covered / options_.block_size;
    Node* node = &root_;
    // Set once the walk dedups onto an equal-content chain held in *other*
    // physical blocks (a coincidental content match, or a recompute that
    // re-produced an already-cached prefix in fresh blocks). Inserting this
    // sequence's own blocks under such a node would break the eviction
    // ordering invariant: a fork sibling can still reference our later
    // blocks without referencing the foreign ancestor, leaving a child node
    // with a higher refcount than its parent.
    bool foreign_chain = false;
    for (int64_t d = 0; d < retain; ++d) {
      const int32_t* chunk = tokens.data() + d * options_.block_size;
      uint64_t key = HashChunk(chunk, options_.block_size);
      auto it = node->children.find(key);
      if (it != node->children.end()) {
        if (!std::equal(chunk, chunk + options_.block_size, it->second->chunk.begin(),
                        it->second->chunk.end())) {
          break;  // Hash collision: cannot chain past it, stop retaining.
        }
        node = it->second.get();  // Dedup: an equal chain already cached.
        if (node->block != state.blocks[static_cast<size_t>(d)]) foreign_chain = true;
        Touch(node);
        continue;
      }
      if (foreign_chain) {
        break;  // Only extend chains whose ancestors are our own blocks.
      }
      auto child = std::make_unique<Node>();
      child->parent = node;
      child->key = key;
      child->block = state.blocks[static_cast<size_t>(d)];
      child->chunk.assign(chunk, chunk + options_.block_size);
      ++refcount_[static_cast<size_t>(child->block)];  // The index's reference.
      Touch(child.get());
      ++cached_count_;
      ++stats_.retained_blocks;
      stats_.peak_cached_blocks = std::max(stats_.peak_cached_blocks, cached_count_);
      Node* inserted = child.get();
      node->children.emplace(key, std::move(child));
      node = inserted;
    }
  }
  if (tok_it != seq_tokens_.end()) {
    seq_tokens_.erase(tok_it);
  }
  Release(id);
  EmitKvObs(nullptr, id);  // Counter refresh after retention kept blocks used.
}

void PrefixCachingAllocator::OnRequestDropped(SeqId id) {
  auto it = pins_.find(id);
  if (it != pins_.end()) {
    // The index still holds its own reference, so the count never reaches 0.
    for (Node* node : it->second.nodes) {
      ReleaseBlockRef(node->block);
    }
    pins_.erase(it);
  }
  seq_tokens_.erase(id);
}

int64_t PrefixCachingAllocator::DrainCache() {
  CHECK(pins_.empty()) << pins_.size() << " prefix pins outstanding at drain";
  int64_t before_evictions = stats_.evictions;
  int64_t released = 0;
  while (EvictOne()) {
    ++released;
  }
  stats_.evictions = before_evictions;  // Drain is not allocation pressure.
  return released;
}

std::string PrefixCachingAllocator::AuditInvariants() const {
  std::ostringstream out;
  // Expected refcount of every block: table references plus one per index
  // node plus one per pinned node. Mirrors the base audit with the two cache
  // reference sources added.
  std::vector<int32_t> expected(refcount_.size(), 0);
  for (const auto& [id, state] : tables_) {
    int64_t needed = BlocksForTokens(state.num_tokens);
    if (static_cast<int64_t>(state.blocks.size()) != needed) {
      out << "seq " << id << ": " << state.num_tokens << " tokens need " << needed
          << " blocks but the table holds " << state.blocks.size();
      return out.str();
    }
    for (int64_t block : state.blocks) {
      if (block < 0 || block >= options_.num_blocks) {
        out << "seq " << id << ": block id " << block << " out of range [0, "
            << options_.num_blocks << ")";
        return out.str();
      }
      ++expected[static_cast<size_t>(block)];
    }
  }
  int64_t nodes_seen = 0;
  std::vector<bool> in_index(refcount_.size(), false);
  std::vector<const Node*> stack{&root_};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    for (const auto& [key, child] : node->children) {
      ++nodes_seen;
      if (child->block < 0 || child->block >= options_.num_blocks) {
        out << "cached node holds out-of-range block id " << child->block;
        return out.str();
      }
      if (in_index[static_cast<size_t>(child->block)]) {
        out << "block " << child->block << " cached by two index nodes";
        return out.str();
      }
      in_index[static_cast<size_t>(child->block)] = true;
      ++expected[static_cast<size_t>(child->block)];
      stack.push_back(child.get());
    }
  }
  if (nodes_seen != cached_count_) {
    out << "index holds " << nodes_seen << " nodes but cached_count_ says "
        << cached_count_;
    return out.str();
  }
  for (const auto& [id, pin] : pins_) {
    for (const Node* node : pin.nodes) {
      ++expected[static_cast<size_t>(node->block)];
    }
  }
  std::vector<bool> on_free_list(refcount_.size(), false);
  for (int64_t block : free_list_) {
    if (block < 0 || block >= options_.num_blocks) {
      out << "free list holds out-of-range block id " << block;
      return out.str();
    }
    if (on_free_list[static_cast<size_t>(block)]) {
      out << "block " << block << " appears twice on the free list";
      return out.str();
    }
    on_free_list[static_cast<size_t>(block)] = true;
  }
  for (int64_t b = 0; b < options_.num_blocks; ++b) {
    auto i = static_cast<size_t>(b);
    if (refcount_[i] != expected[i]) {
      out << "block " << b << ": refcount " << refcount_[i] << " but " << expected[i]
          << " references (tables + index + pins)"
          << (expected[i] == 0 ? " (leaked block)" : "");
      return out.str();
    }
    if ((refcount_[i] == 0) != on_free_list[i]) {
      out << "block " << b << ": refcount " << refcount_[i]
          << (on_free_list[i] ? " yet on the free list" : " yet missing from the free list");
      return out.str();
    }
  }
  return "";
}

std::string PrefixCachingAllocator::AuditCache() const {
  std::ostringstream out;
  // Structure: every cached block referenced at least once beyond the free
  // list (the index's own reference), chunk arithmetic intact, and chains
  // unbroken — a child's block may never outlive its parent's, which
  // leaf-first eviction guarantees by construction and this audit re-checks.
  std::vector<const Node*> stack{&root_};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    for (const auto& [key, child] : node->children) {
      if (child->parent != node || child->key != key) {
        out << "cached node for block " << child->block << " has a broken parent link";
        return out.str();
      }
      if (static_cast<int64_t>(child->chunk.size()) != options_.block_size) {
        out << "cached node for block " << child->block << " covers "
            << child->chunk.size() << " tokens, want " << options_.block_size;
        return out.str();
      }
      if (refcount_[static_cast<size_t>(child->block)] < 1) {
        out << "cached block " << child->block << " has refcount "
            << refcount_[static_cast<size_t>(child->block)] << " (evicted while mapped)";
        return out.str();
      }
      if (node != &root_ &&
          refcount_[static_cast<size_t>(node->block)] <
              refcount_[static_cast<size_t>(child->block)]) {
        out << "cached block " << child->block << " (refcount "
            << refcount_[static_cast<size_t>(child->block)] << ") outranks its parent "
            << node->block << " (refcount " << refcount_[static_cast<size_t>(node->block)]
            << "): a chain reference is missing its ancestors";
        return out.str();
      }
      stack.push_back(child.get());
    }
  }
  for (const auto& [id, pin] : pins_) {
    if (pin.nodes.empty()) {
      out << "seq " << id << ": empty pin registered";
      return out.str();
    }
    for (const Node* node : pin.nodes) {
      if (refcount_[static_cast<size_t>(node->block)] < 2) {
        out << "seq " << id << ": pinned block " << node->block
            << " has refcount < 2 (pin reference lost)";
        return out.str();
      }
    }
  }
  return "";
}

}  // namespace sarathi
