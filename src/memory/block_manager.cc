#include "src/memory/block_manager.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/common/logging.h"
#include "src/obs/obs_hooks.h"

namespace sarathi {

namespace {

constexpr char kKvCategory[] = "kv";

// Verify-hook notification shared by both allocators; one branch when no
// checker is attached.
void NotifyKv(ObsHooks* obs, KvVerifyEvent event, SeqId id) {
  if (obs != nullptr && obs->verify != nullptr) {
    obs->verify->OnKvEvent(event, id);
  }
}

}  // namespace

void PagedBlockManager::EmitKvObs(const char* event, SeqId id) {
  if (obs_ == nullptr) {
    return;
  }
  if (Tracer* tracer = obs_->ActiveTracer()) {
    if (used_blocks() != last_emitted_used_) {
      tracer->Counter(kKvCategory, "kv_blocks_in_use", obs_->now_s,
                      static_cast<double>(used_blocks()));
    }
    if (event != nullptr) {
      tracer->InstantNow(kKvCategory, event, {Arg("seq", id), Arg("used_blocks", used_blocks())});
    }
  }
  if (obs_->metrics != nullptr && used_blocks() != last_emitted_used_) {
    obs_->metrics->SetGauge("kv_blocks_in_use", obs_->now_s,
                            static_cast<double>(used_blocks()));
  }
  last_emitted_used_ = used_blocks();
}

PagedBlockManager::PagedBlockManager(const Options& options) : options_(options) {
  CHECK_GT(options_.num_blocks, 0);
  CHECK_GT(options_.block_size, 0);
  CHECK_GE(options_.watermark, 0.0);
  CHECK_LT(options_.watermark, 1.0);
  free_list_.reserve(static_cast<size_t>(options_.num_blocks));
  // Hand out low block ids first: push high ids so pop_back yields low ones.
  for (int64_t b = options_.num_blocks - 1; b >= 0; --b) {
    free_list_.push_back(b);
  }
  refcount_.assign(static_cast<size_t>(options_.num_blocks), 0);
}

int64_t PagedBlockManager::BlocksForTokens(int64_t tokens) const {
  if (options_.sliding_window > 0) {
    // A windowed sequence cycles within window-covering blocks; one extra
    // block absorbs the partially-overwritten boundary.
    int64_t cap = options_.sliding_window + options_.block_size;
    tokens = std::min(tokens, cap);
  }
  return (tokens + options_.block_size - 1) / options_.block_size;
}

int64_t PagedBlockManager::BlockIndexFor(int64_t pos) const {
  CHECK_GE(pos, 0);
  if (options_.sliding_window > 0) {
    int64_t cap_tokens = options_.sliding_window + options_.block_size;
    int64_t cap_blocks = (cap_tokens + options_.block_size - 1) / options_.block_size;
    int64_t window_slots = cap_blocks * options_.block_size;
    pos %= window_slots;
  }
  return pos / options_.block_size;
}

bool PagedBlockManager::CanAdmit(int64_t prompt_len, int64_t /*max_total_len*/) const {
  int64_t needed = BlocksForTokens(prompt_len);
  auto watermark_blocks =
      static_cast<int64_t>(std::ceil(options_.watermark * static_cast<double>(options_.num_blocks)));
  return free_blocks() - needed >= watermark_blocks;
}

void PagedBlockManager::Admit(SeqId id, int64_t prompt_len, int64_t max_total_len) {
  CHECK(!tables_.contains(id)) << "sequence " << id << " already admitted";
  CHECK(CanAdmit(prompt_len, max_total_len));
  SequenceState state;
  int64_t needed = BlocksForTokens(prompt_len);
  // Reserve table capacity for the sequence's full lifetime so decode-time
  // AppendToken block growth never reallocates the table.
  state.blocks.reserve(
      static_cast<size_t>(std::max(needed, BlocksForTokens(max_total_len))));
  for (int64_t i = 0; i < needed; ++i) {
    state.blocks.push_back(AllocateBlock());
  }
  state.num_tokens = prompt_len;
  tables_.emplace(id, std::move(state));
  NotifyKv(obs_, KvVerifyEvent::kAdmit, id);
  EmitKvObs("kv_admit", id);
}

PagedBlockManager::SequenceState& PagedBlockManager::FindState(SeqId id) const {
  if (hot_state_ != nullptr && hot_id_ == id) {
    return *hot_state_;
  }
  auto it = tables_.find(id);
  CHECK(it != tables_.end()) << "unknown sequence " << id;
  hot_id_ = id;
  hot_state_ = const_cast<SequenceState*>(&it->second);
  return *hot_state_;
}

bool PagedBlockManager::CanAppendToken(SeqId id) const {
  const SequenceState& state = FindState(id);
  int64_t needed = BlocksForTokens(state.num_tokens + 1);
  if (needed > static_cast<int64_t>(state.blocks.size())) {
    return free_blocks() > 0;
  }
  // The token lands in an existing block — but if that block is shared with
  // a forked sibling, the write copy-on-writes it and needs a free block.
  int64_t block = state.blocks[static_cast<size_t>(BlockIndexFor(state.num_tokens))];
  return refcount_[static_cast<size_t>(block)] == 1 || free_blocks() > 0;
}

void PagedBlockManager::AppendToken(SeqId id) {
  SequenceState& state = FindState(id);
  int64_t needed = BlocksForTokens(state.num_tokens + 1);
  if (needed > static_cast<int64_t>(state.blocks.size())) {
    CHECK_GT(free_blocks(), 0) << "AppendToken without a free block";
    state.blocks.push_back(AllocateBlock());
  } else {
    // Writing into an existing block requires exclusive ownership; forked
    // sequences copy-on-write here, and the event is queued for the engine
    // to apply the data copy (TakePendingCows).
    std::optional<CowOp> cow = MakeWritableAt(state, id, state.num_tokens);
    if (cow.has_value()) {
      pending_cows_.emplace_back(id, *cow);
    }
  }
  ++state.num_tokens;
  NotifyKv(obs_, KvVerifyEvent::kAppend, id);
  EmitKvObs(nullptr, id);  // Counter only; per-token instants would flood.
}

std::vector<std::pair<SeqId, PagedBlockManager::CowOp>> PagedBlockManager::TakePendingCows() {
  std::vector<std::pair<SeqId, CowOp>> taken;
  taken.swap(pending_cows_);
  return taken;
}

std::optional<PagedBlockManager::CowOp> PagedBlockManager::AppendTokenCow(SeqId id) {
  SequenceState& state = FindState(id);
  int64_t needed = BlocksForTokens(state.num_tokens + 1);
  std::optional<CowOp> cow;
  if (needed > static_cast<int64_t>(state.blocks.size())) {
    CHECK_GT(free_blocks(), 0) << "AppendTokenCow without a free block";
    state.blocks.push_back(AllocateBlock());
  } else {
    cow = MakeWritableAt(state, id, state.num_tokens);
  }
  ++state.num_tokens;
  NotifyKv(obs_, KvVerifyEvent::kAppend, id);
  return cow;
}

std::optional<PagedBlockManager::CowOp> PagedBlockManager::MakeWritable(SeqId id, int64_t pos) {
  return MakeWritableAt(FindState(id), id, pos);
}

std::optional<PagedBlockManager::CowOp> PagedBlockManager::MakeWritableAt(SequenceState& state,
                                                                          SeqId id, int64_t pos) {
  int64_t index = BlockIndexFor(pos);
  CHECK_LT(index, static_cast<int64_t>(state.blocks.size()))
      << "position " << pos << " not covered";
  int64_t block = state.blocks[static_cast<size_t>(index)];
  if (refcount_[static_cast<size_t>(block)] == 1) {
    return std::nullopt;
  }
  CHECK_GT(free_blocks(), 0) << "copy-on-write without a free block";
  int64_t fresh = AllocateBlock();
  ReleaseBlockRef(block);
  state.blocks[static_cast<size_t>(index)] = fresh;
  NotifyKv(obs_, KvVerifyEvent::kCow, id);
  return CowOp{index, block, fresh};
}

bool PagedBlockManager::CanFork(SeqId id) const {
  return tables_.contains(id);
}

void PagedBlockManager::Fork(SeqId parent, SeqId child) {
  auto it = tables_.find(parent);
  CHECK(it != tables_.end()) << "unknown sequence " << parent;
  CHECK(!tables_.contains(child)) << "sequence " << child << " already admitted";
  SequenceState copy = it->second;
  for (int64_t block : copy.blocks) {
    ++refcount_[static_cast<size_t>(block)];
  }
  tables_.emplace(child, std::move(copy));
  NotifyKv(obs_, KvVerifyEvent::kFork, child);
  EmitKvObs("kv_fork", child);
}

void PagedBlockManager::Release(SeqId id) {
  auto it = tables_.find(id);
  CHECK(it != tables_.end()) << "unknown sequence " << id;
  for (int64_t block : it->second.blocks) {
    ReleaseBlockRef(block);
  }
  tables_.erase(it);
  // The erased entry may be the memoized one; drop it unconditionally.
  hot_state_ = nullptr;
  NotifyKv(obs_, KvVerifyEvent::kRelease, id);
  EmitKvObs("kv_release", id);
}

double PagedBlockManager::Utilization() const {
  return static_cast<double>(used_blocks()) / static_cast<double>(options_.num_blocks);
}

const std::vector<int64_t>& PagedBlockManager::BlockTable(SeqId id) const {
  return FindState(id).blocks;
}

int64_t PagedBlockManager::SequenceTokens(SeqId id) const {
  return FindState(id).num_tokens;
}

std::string PagedBlockManager::AuditInvariants() const {
  std::ostringstream out;
  // Expected refcount of every physical block, recounted from the tables.
  std::vector<int32_t> expected(refcount_.size(), 0);
  for (const auto& [id, state] : tables_) {
    int64_t needed = BlocksForTokens(state.num_tokens);
    if (static_cast<int64_t>(state.blocks.size()) != needed) {
      out << "seq " << id << ": " << state.num_tokens << " tokens need " << needed
          << " blocks but the table holds " << state.blocks.size();
      return out.str();
    }
    for (int64_t block : state.blocks) {
      if (block < 0 || block >= options_.num_blocks) {
        out << "seq " << id << ": block id " << block << " out of range [0, "
            << options_.num_blocks << ")";
        return out.str();
      }
      ++expected[static_cast<size_t>(block)];
    }
  }
  std::vector<bool> on_free_list(refcount_.size(), false);
  for (int64_t block : free_list_) {
    if (block < 0 || block >= options_.num_blocks) {
      out << "free list holds out-of-range block id " << block;
      return out.str();
    }
    if (on_free_list[static_cast<size_t>(block)]) {
      out << "block " << block << " appears twice on the free list";
      return out.str();
    }
    on_free_list[static_cast<size_t>(block)] = true;
  }
  for (int64_t b = 0; b < options_.num_blocks; ++b) {
    auto i = static_cast<size_t>(b);
    if (refcount_[i] != expected[i]) {
      out << "block " << b << ": refcount " << refcount_[i] << " but " << expected[i]
          << " table references" << (expected[i] == 0 ? " (leaked block)" : "");
      return out.str();
    }
    if ((refcount_[i] == 0) != on_free_list[i]) {
      out << "block " << b << ": refcount " << refcount_[i]
          << (on_free_list[i] ? " yet on the free list" : " yet missing from the free list");
      return out.str();
    }
  }
  // used + free == total is implied by the per-block check above: every block
  // is either referenced (used) or on the free list, never both.
  return "";
}

int32_t PagedBlockManager::BlockRefCount(int64_t block) const {
  CHECK_GE(block, 0);
  CHECK_LT(block, options_.num_blocks);
  return refcount_[static_cast<size_t>(block)];
}

int64_t PagedBlockManager::AllocateBlock() {
  CHECK(!free_list_.empty()) << "out of KV blocks";
  int64_t block = free_list_.back();
  free_list_.pop_back();
  CHECK_EQ(refcount_[static_cast<size_t>(block)], 0);
  refcount_[static_cast<size_t>(block)] = 1;
  return block;
}

void PagedBlockManager::ReleaseBlockRef(int64_t block) {
  CHECK_GE(block, 0);
  CHECK_LT(block, options_.num_blocks);
  int32_t& count = refcount_[static_cast<size_t>(block)];
  CHECK_GT(count, 0);
  if (--count == 0) {
    free_list_.push_back(block);
  }
}

ReservationAllocator::ReservationAllocator(int64_t capacity_tokens, int64_t max_seq_len)
    : max_seq_len_(max_seq_len), max_concurrent_(capacity_tokens / max_seq_len) {
  CHECK_GT(max_seq_len_, 0);
  CHECK_GT(max_concurrent_, 0) << "KV capacity below one max-length sequence";
}

bool ReservationAllocator::CanAdmit(int64_t prompt_len, int64_t max_total_len) const {
  if (prompt_len > max_seq_len_ || max_total_len > max_seq_len_) {
    return false;
  }
  return num_admitted() < max_concurrent_;
}

void ReservationAllocator::Admit(SeqId id, int64_t prompt_len, int64_t max_total_len) {
  CHECK(CanAdmit(prompt_len, max_total_len));
  CHECK(!admitted_.contains(id)) << "sequence " << id << " already admitted";
  admitted_.emplace(id, prompt_len);
  NotifyKv(obs_, KvVerifyEvent::kAdmit, id);
  if (obs_ != nullptr && obs_->metrics != nullptr) {
    obs_->metrics->SetGauge("kv_blocks_in_use", obs_->now_s, static_cast<double>(used_units()));
  }
}

bool ReservationAllocator::CanAppendToken(SeqId id) const {
  auto it = admitted_.find(id);
  CHECK(it != admitted_.end()) << "unknown sequence " << id;
  return it->second < max_seq_len_;
}

void ReservationAllocator::AppendToken(SeqId id) {
  auto it = admitted_.find(id);
  CHECK(it != admitted_.end()) << "unknown sequence " << id;
  CHECK_LT(it->second, max_seq_len_);
  ++it->second;
  NotifyKv(obs_, KvVerifyEvent::kAppend, id);
}

void ReservationAllocator::Release(SeqId id) {
  CHECK_EQ(admitted_.erase(id), 1u) << "unknown sequence " << id;
  NotifyKv(obs_, KvVerifyEvent::kRelease, id);
  if (obs_ != nullptr && obs_->metrics != nullptr) {
    obs_->metrics->SetGauge("kv_blocks_in_use", obs_->now_s, static_cast<double>(used_units()));
  }
}

double ReservationAllocator::Utilization() const {
  return static_cast<double>(num_admitted()) / static_cast<double>(max_concurrent_);
}

std::string ReservationAllocator::AuditInvariants() const {
  std::ostringstream out;
  if (num_admitted() > max_concurrent_) {
    out << num_admitted() << " sequences admitted but capacity reserves only "
        << max_concurrent_;
    return out.str();
  }
  for (const auto& [id, tokens] : admitted_) {
    if (tokens < 0 || tokens > max_seq_len_) {
      out << "seq " << id << ": " << tokens << " tokens outside [0, " << max_seq_len_
          << "] reservation";
      return out.str();
    }
  }
  return "";
}

}  // namespace sarathi
