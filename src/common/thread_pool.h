// Fixed-size thread pool and the RunMany fan-out helper behind every parallel
// execution path in the simulator (capacity probes, bench sweeps, fuzz seeds).
//
// Determinism contract: RunMany collects results strictly by submission index,
// so for tasks that are pure functions of their index the output is identical
// for any worker count — parallelism only changes wall time, never results.
// With jobs <= 1 — or on a host with fewer than two hardware threads, where a
// pool can only add queue overhead — the tasks run inline on the calling
// thread, in order, with no threads created at all (see RunsInline).

#ifndef SRC_COMMON_THREAD_POOL_H_
#define SRC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace sarathi {

// A fixed set of worker threads draining a FIFO queue. Tasks must not submit
// to the pool they run on while the caller blocks on them (no nesting).
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Enqueues `task` for execution on some worker.
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished.
  void Wait();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int64_t in_flight_ = 0;
  bool shutdown_ = false;
};

// Clamps a --jobs request to a sane worker count: non-positive values mean
// "use the hardware concurrency", and the result is always >= 1.
int ResolveJobs(int jobs);

// True when RunMany(jobs, ...) will execute every task inline on the calling
// thread: jobs <= 1, or the host reports fewer than two hardware threads (a
// pool on a single core can only add mutex/condvar overhead — measured 0.92x
// on the 1-core CI host before this fast path existed).
bool RunsInline(int jobs);

// Runs fn(0) .. fn(n - 1) across `jobs` workers and returns the results
// indexed by submission order. When RunsInline(jobs) holds (pass the value the
// user gave — no clamping) everything runs inline serially with zero
// thread/queue overhead. If any task throws, the exception of the
// lowest-index failing task is rethrown after all tasks have finished
// (results of the others are discarded).
template <typename Fn>
auto RunMany(int jobs, int64_t n, Fn&& fn) -> std::vector<decltype(fn(int64_t{}))> {
  using Result = decltype(fn(int64_t{}));
  std::vector<Result> results(static_cast<size_t>(n));
  if (n <= 0) {
    return results;
  }
  if (RunsInline(jobs) || n == 1) {
    // Same exception contract as the pool path: every task runs even if an
    // earlier one throws, and the lowest-index failure is rethrown at the end.
    std::exception_ptr first_error;
    for (int64_t i = 0; i < n; ++i) {
      try {
        results[static_cast<size_t>(i)] = fn(i);
      } catch (...) {
        if (!first_error) {
          first_error = std::current_exception();
        }
      }
    }
    if (first_error) {
      std::rethrow_exception(first_error);
    }
    return results;
  }
  std::vector<std::exception_ptr> errors(static_cast<size_t>(n));
  {
    ThreadPool pool(static_cast<int>(std::min<int64_t>(jobs, n)));
    for (int64_t i = 0; i < n; ++i) {
      pool.Submit([&, i]() {
        try {
          results[static_cast<size_t>(i)] = fn(i);
        } catch (...) {
          errors[static_cast<size_t>(i)] = std::current_exception();
        }
      });
    }
    pool.Wait();
  }
  for (auto& error : errors) {
    if (error) {
      std::rethrow_exception(error);
    }
  }
  return results;
}

}  // namespace sarathi

#endif  // SRC_COMMON_THREAD_POOL_H_
