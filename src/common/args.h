// Minimal --key=value command-line parsing for the CLI tools.

#ifndef SRC_COMMON_ARGS_H_
#define SRC_COMMON_ARGS_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace sarathi {

class ArgParser {
 public:
  // Parses argv-style arguments of the form --key=value or --flag (valueless
  // flags read back as "true"). Fails on anything not starting with "--" or
  // on duplicate keys.
  static StatusOr<ArgParser> Parse(int argc, const char* const* argv);

  bool Has(const std::string& key) const { return values_.contains(key); }

  // Typed accessors with defaults. Type-mismatched values produce an error.
  std::string GetString(const std::string& key, const std::string& default_value) const;
  StatusOr<int64_t> GetInt(const std::string& key, int64_t default_value) const;
  StatusOr<double> GetDouble(const std::string& key, double default_value) const;
  bool GetBool(const std::string& key, bool default_value) const;

  // Keys the program never queried — for unknown-flag warnings. Call after
  // all Get*()s.
  std::vector<std::string> UnconsumedKeys() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::set<std::string> consumed_;
};

}  // namespace sarathi

#endif  // SRC_COMMON_ARGS_H_
