// Deterministic random number generation for workload synthesis.
//
// All stochastic components (arrival processes, length samplers, reference
// model weights) draw from an explicitly seeded Rng so experiments are
// reproducible bit-for-bit across runs.

#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>
#include <random>

namespace sarathi {

class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);
  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);
  // Exponential with the given rate (lambda); mean is 1/rate.
  double Exponential(double rate);
  // Log-normal parameterized by the underlying normal's mu and sigma.
  double LogNormal(double mu, double sigma);
  // Standard-normal scaled: mean + stddev * N(0,1).
  double Normal(double mean, double stddev);

  // Forks an independent generator; child streams do not perturb the parent.
  Rng Fork();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace sarathi

#endif  // SRC_COMMON_RNG_H_
