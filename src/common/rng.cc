#include "src/common/rng.h"

#include "src/common/logging.h"

namespace sarathi {

double Rng::Uniform(double lo, double hi) {
  CHECK_LT(lo, hi);
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  CHECK_LE(lo, hi);
  return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
}

double Rng::Exponential(double rate) {
  CHECK_GT(rate, 0.0);
  return std::exponential_distribution<double>(rate)(engine_);
}

double Rng::LogNormal(double mu, double sigma) {
  CHECK_GT(sigma, 0.0);
  return std::lognormal_distribution<double>(mu, sigma)(engine_);
}

double Rng::Normal(double mean, double stddev) {
  CHECK_GT(stddev, 0.0);
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

Rng Rng::Fork() { return Rng(engine_()); }

}  // namespace sarathi
