#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/common/logging.h"

namespace sarathi {

void Summary::Add(double sample) {
  samples_.push_back(sample);
  sorted_valid_ = false;
}

void Summary::AddAll(const std::vector<double>& samples) {
  samples_.insert(samples_.end(), samples.begin(), samples.end());
  sorted_valid_ = false;
}

double Summary::Sum() const {
  double sum = 0.0;
  for (double s : samples_) {
    sum += s;
  }
  return sum;
}

double Summary::Mean() const {
  CHECK(!samples_.empty());
  return Sum() / static_cast<double>(samples_.size());
}

double Summary::StdDev() const {
  if (samples_.size() < 2) {
    return 0.0;
  }
  double mean = Mean();
  double ss = 0.0;
  for (double s : samples_) {
    ss += (s - mean) * (s - mean);
  }
  return std::sqrt(ss / static_cast<double>(samples_.size() - 1));
}

double Summary::Min() const {
  CHECK(!samples_.empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::Max() const {
  CHECK(!samples_.empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

void Summary::EnsureSorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Summary::Quantile(double q) const {
  CHECK(!samples_.empty());
  CHECK_GE(q, 0.0);
  CHECK_LE(q, 1.0);
  EnsureSorted();
  if (sorted_.size() == 1) {
    return sorted_[0];
  }
  double rank = q * static_cast<double>(sorted_.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, sorted_.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted_[lo] + frac * (sorted_[hi] - sorted_[lo]);
}

void RunningStats::Add(double sample) {
  if (count_ == 0) {
    min_ = sample;
    max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  ++count_;
  double delta = sample - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (sample - mean_);
}

double RunningStats::Variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::StdDev() const { return std::sqrt(Variance()); }

Histogram::Histogram(double lo, double hi, size_t num_buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(num_buckets)), counts_(num_buckets) {
  CHECK_GT(hi, lo);
  CHECK_GT(num_buckets, 0u);
}

void Histogram::Add(double sample) {
  size_t index;
  if (sample < lo_) {
    index = 0;
  } else if (sample >= hi_) {
    index = counts_.size() - 1;
  } else {
    index = static_cast<size_t>((sample - lo_) / width_);
    index = std::min(index, counts_.size() - 1);
  }
  ++counts_[index];
  ++total_;
}

double Histogram::bucket_lo(size_t i) const { return lo_ + width_ * static_cast<double>(i); }

double Histogram::bucket_hi(size_t i) const { return lo_ + width_ * static_cast<double>(i + 1); }

std::string Histogram::ToString() const {
  int64_t max_count = 1;
  for (int64_t c : counts_) {
    max_count = std::max(max_count, c);
  }
  std::ostringstream out;
  for (size_t i = 0; i < counts_.size(); ++i) {
    int bar = static_cast<int>(40.0 * static_cast<double>(counts_[i]) /
                               static_cast<double>(max_count));
    out << "[" << bucket_lo(i) << ", " << bucket_hi(i) << ") " << counts_[i] << " "
        << std::string(static_cast<size_t>(bar), '#') << "\n";
  }
  return out.str();
}

}  // namespace sarathi
