#include "src/common/table.h"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <sstream>

#include "src/common/logging.h"

namespace sarathi {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  CHECK(!header_.empty());
}

void Table::AddRow(std::vector<std::string> row) {
  CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::Num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string Table::Int(int64_t value) { return std::to_string(value); }

std::string Table::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t i = 0; i < header_.size(); ++i) {
    widths[i] = header_[i].size();
  }
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      out << row[i] << std::string(widths[i] - row[i].size(), ' ');
      out << (i + 1 < row.size() ? "  " : "");
    }
    out << "\n";
  };
  emit_row(header_);
  size_t total = 0;
  for (size_t w : widths) {
    total += w;
  }
  total += 2 * (widths.size() - 1);
  out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out.str();
}

void Table::Print() const { std::cout << ToString() << std::flush; }

void PrintBanner(const std::string& title) {
  std::cout << "\n== " << title << " ==\n" << std::flush;
}

}  // namespace sarathi
