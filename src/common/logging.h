// Minimal logging and invariant-checking facility.
//
// Severity-filtered stream logging plus CHECK macros that terminate the
// process on violated invariants. The log sink defaults to stderr and can be
// redirected for tests.

#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <cstdlib>
#include <ostream>
#include <sstream>
#include <string_view>

namespace sarathi {

enum class LogSeverity : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

// Returns the lowest severity that is emitted. Defaults to kInfo.
LogSeverity MinLogSeverity();

// Sets the lowest severity that is emitted.
void SetMinLogSeverity(LogSeverity severity);

// Redirects log output. Passing nullptr restores stderr. The stream must
// outlive all logging calls. Intended for tests.
void SetLogStream(std::ostream* stream);

namespace internal {

// Accumulates one log statement and flushes it on destruction. kFatal aborts.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, std::string_view file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

// Swallows the stream expression when a log statement is compiled out.
struct LogMessageVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal

#define SARATHI_LOG_ENABLED(severity) \
  (::sarathi::LogSeverity::severity >= ::sarathi::MinLogSeverity())

#define LOG(severity)                                                        \
  !SARATHI_LOG_ENABLED(k##severity)                                         \
      ? (void)0                                                             \
      : ::sarathi::internal::LogMessageVoidify() &                          \
            ::sarathi::internal::LogMessage(                                \
                ::sarathi::LogSeverity::k##severity, __FILE__, __LINE__)    \
                .stream()

#define CHECK(condition)                                                     \
  (condition) ? (void)0                                                     \
              : ::sarathi::internal::LogMessageVoidify() &                  \
                    ::sarathi::internal::LogMessage(                        \
                        ::sarathi::LogSeverity::kFatal, __FILE__, __LINE__) \
                        .stream()                                           \
                        << "Check failed: " #condition " "

#define CHECK_OP(a, b, op) CHECK((a)op(b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_EQ(a, b) CHECK_OP(a, b, ==)
#define CHECK_NE(a, b) CHECK_OP(a, b, !=)
#define CHECK_LT(a, b) CHECK_OP(a, b, <)
#define CHECK_LE(a, b) CHECK_OP(a, b, <=)
#define CHECK_GT(a, b) CHECK_OP(a, b, >)
#define CHECK_GE(a, b) CHECK_OP(a, b, >=)

}  // namespace sarathi

#endif  // SRC_COMMON_LOGGING_H_
