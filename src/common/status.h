// Lightweight error propagation: Status and StatusOr<T>.
//
// Mirrors the absl::Status surface the rest of the codebase needs. Errors are
// expected to be rare and informational; hot paths communicate failure via
// bool/optional instead.

#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "src/common/logging.h"

namespace sarathi {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kResourceExhausted = 3,
  kFailedPrecondition = 4,
  kOutOfRange = 5,
  kInternal = 6,
  kUnimplemented = 7,
};

// Human-readable name of a status code, e.g. "INVALID_ARGUMENT".
std::string_view StatusCodeName(StatusCode code);

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Formats as "CODE: message" (or "OK").
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status ResourceExhaustedError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status InternalError(std::string message);
Status UnimplementedError(std::string message);

// Value-or-error container. Accessing value() on an error status aborts.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT: implicit by design
    CHECK(!status_.ok()) << "StatusOr constructed from OK status without a value";
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T& value() & {
    CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T&& value() && {
    CHECK(ok()) << status_.ToString();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

#define RETURN_IF_ERROR(expr)                  \
  do {                                         \
    ::sarathi::Status _status = (expr);        \
    if (!_status.ok()) return _status;         \
  } while (false)

}  // namespace sarathi

#endif  // SRC_COMMON_STATUS_H_
