// Fixed-width text table rendering for benchmark output.
//
// Every bench binary prints the rows/series of the corresponding paper figure
// or table through this printer so outputs are uniform and diffable.

#ifndef SRC_COMMON_TABLE_H_
#define SRC_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace sarathi {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Appends a row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  // Convenience: formats doubles with the given precision.
  static std::string Num(double value, int precision = 3);
  static std::string Int(int64_t value);

  // Renders with a separator line under the header and right-padded cells.
  std::string ToString() const;

  // Renders to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Prints a section banner ("== title ==") around bench output.
void PrintBanner(const std::string& title);

}  // namespace sarathi

#endif  // SRC_COMMON_TABLE_H_
