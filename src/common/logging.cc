#include "src/common/logging.h"

#include <cstdio>
#include <iostream>

namespace sarathi {
namespace {

LogSeverity g_min_severity = LogSeverity::kInfo;
std::ostream* g_stream = nullptr;

const char* SeverityName(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kDebug:
      return "DEBUG";
    case LogSeverity::kInfo:
      return "INFO";
    case LogSeverity::kWarning:
      return "WARNING";
    case LogSeverity::kError:
      return "ERROR";
    case LogSeverity::kFatal:
      return "FATAL";
  }
  return "UNKNOWN";
}

std::string_view Basename(std::string_view path) {
  size_t pos = path.find_last_of('/');
  return pos == std::string_view::npos ? path : path.substr(pos + 1);
}

}  // namespace

LogSeverity MinLogSeverity() { return g_min_severity; }

void SetMinLogSeverity(LogSeverity severity) { g_min_severity = severity; }

void SetLogStream(std::ostream* stream) { g_stream = stream; }

namespace internal {

LogMessage::LogMessage(LogSeverity severity, std::string_view file, int line)
    : severity_(severity) {
  stream_ << "[" << SeverityName(severity) << " " << Basename(file) << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::ostream& out = g_stream != nullptr ? *g_stream : std::cerr;
  out << stream_.str();
  out.flush();
  if (severity_ == LogSeverity::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace sarathi
