#include "src/common/thread_pool.h"

#include <algorithm>

#include "src/common/logging.h"

namespace sarathi {

ThreadPool::ThreadPool(int num_threads) {
  CHECK_GE(num_threads, 1);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    CHECK(!shutdown_) << "Submit after shutdown";
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this]() { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this]() { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutdown_ with a drained queue
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

int ResolveJobs(int jobs) {
  if (jobs > 0) {
    return jobs;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return std::max(1, static_cast<int>(hw));
}

bool RunsInline(int jobs) {
  if (jobs <= 1) {
    return true;
  }
  return std::thread::hardware_concurrency() < 2;
}

}  // namespace sarathi
