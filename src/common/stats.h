// Statistics helpers used by the simulator's metric collection and by the
// benchmark harnesses: exact-percentile sample summaries, streaming
// mean/variance accumulators, and fixed-bucket histograms.

#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sarathi {

// Collects samples and answers exact quantile queries. Quantiles use linear
// interpolation between closest ranks (the same convention as numpy's default
// "linear" method), so results are stable across sample counts.
class Summary {
 public:
  void Add(double sample);
  void AddAll(const std::vector<double>& samples);

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double Sum() const;
  double Mean() const;
  // Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
  double StdDev() const;
  double Min() const;
  double Max() const;

  // q in [0, 1]; e.g. Quantile(0.99) is the P99. Requires at least 1 sample.
  double Quantile(double q) const;
  double Median() const { return Quantile(0.5); }

  // Raw samples in insertion order.
  const std::vector<double>& samples() const { return samples_; }

 private:
  // Sorts lazily: `sorted_` mirrors `samples_` once a quantile is requested.
  void EnsureSorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

// O(1)-memory mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void Add(double sample);

  int64_t count() const { return count_; }
  double Mean() const { return count_ > 0 ? mean_ : 0.0; }
  // Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double Variance() const;
  double StdDev() const;
  double Min() const { return min_; }
  double Max() const { return max_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Fixed-width bucket histogram over [lo, hi); out-of-range samples clamp to
// the first/last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t num_buckets);

  void Add(double sample);

  size_t num_buckets() const { return counts_.size(); }
  int64_t bucket_count(size_t i) const { return counts_[i]; }
  double bucket_lo(size_t i) const;
  double bucket_hi(size_t i) const;
  int64_t total() const { return total_; }

  // Multi-line textual rendering with proportional bars, for logs.
  std::string ToString() const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
};

}  // namespace sarathi

#endif  // SRC_COMMON_STATS_H_
