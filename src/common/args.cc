#include "src/common/args.h"

#include <cstdlib>

namespace sarathi {

StatusOr<ArgParser> ArgParser::Parse(int argc, const char* const* argv) {
  ArgParser parser;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      return InvalidArgumentError("expected --key=value, got '" + arg + "'");
    }
    std::string body = arg.substr(2);
    std::string key;
    std::string value;
    size_t eq = body.find('=');
    if (eq == std::string::npos) {
      key = body;
      value = "true";
    } else {
      key = body.substr(0, eq);
      value = body.substr(eq + 1);
    }
    if (key.empty()) {
      return InvalidArgumentError("empty flag name in '" + arg + "'");
    }
    if (!parser.values_.emplace(key, value).second) {
      return InvalidArgumentError("duplicate flag --" + key);
    }
  }
  return parser;
}

std::string ArgParser::GetString(const std::string& key, const std::string& default_value) const {
  consumed_.insert(key);
  auto it = values_.find(key);
  return it == values_.end() ? default_value : it->second;
}

StatusOr<int64_t> ArgParser::GetInt(const std::string& key, int64_t default_value) const {
  consumed_.insert(key);
  auto it = values_.find(key);
  if (it == values_.end()) {
    return default_value;
  }
  char* end = nullptr;
  int64_t value = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    return InvalidArgumentError("--" + key + " expects an integer, got '" + it->second + "'");
  }
  return value;
}

StatusOr<double> ArgParser::GetDouble(const std::string& key, double default_value) const {
  consumed_.insert(key);
  auto it = values_.find(key);
  if (it == values_.end()) {
    return default_value;
  }
  char* end = nullptr;
  double value = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    return InvalidArgumentError("--" + key + " expects a number, got '" + it->second + "'");
  }
  return value;
}

bool ArgParser::GetBool(const std::string& key, bool default_value) const {
  consumed_.insert(key);
  auto it = values_.find(key);
  if (it == values_.end()) {
    return default_value;
  }
  return it->second != "false" && it->second != "0";
}

std::vector<std::string> ArgParser::UnconsumedKeys() const {
  std::vector<std::string> keys;
  for (const auto& [key, value] : values_) {
    if (!consumed_.contains(key)) {
      keys.push_back(key);
    }
  }
  return keys;
}

}  // namespace sarathi
