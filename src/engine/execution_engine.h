// Time-domain execution engine interface.
//
// The replica simulator asks an engine how long a scheduled batch takes — per
// pipeline stage and end-to-end — without caring whether the answer comes
// from an analytical model (SimulatedEngine, the GPU substitute per
// DESIGN.md) or measurements. Value-domain execution (actual token
// generation) lives separately in engine/reference.

#ifndef SRC_ENGINE_EXECUTION_ENGINE_H_
#define SRC_ENGINE_EXECUTION_ENGINE_H_

#include <memory>

#include "src/perfmodel/iteration_cost.h"
#include "src/scheduler/batch.h"

namespace sarathi {

class ExecutionEngine {
 public:
  virtual ~ExecutionEngine() = default;

  // Pipeline depth: how many micro-batches can be in flight.
  virtual int num_stages() const = 0;

  // Execution time of one pipeline stage for this batch.
  virtual double StageTime(const ScheduledBatch& batch) const = 0;

  // End-to-end iteration latency and its component breakdown.
  virtual CostBreakdown IterationBreakdown(const ScheduledBatch& batch) const = 0;
};

// Predicts execution time with the roofline cost model. The model may be
// shared with the caller (e.g. a cluster simulator reusing one memo cache
// across serial replica runs) — never across concurrently running engines.
// When `reuse_buffers` is set the per-call BatchWork shape is built into a
// reused scratch buffer, making steady-state StageTime calls allocation-free.
class SimulatedEngine : public ExecutionEngine {
 public:
  explicit SimulatedEngine(IterationCostModel cost_model)
      : SimulatedEngine(std::make_shared<IterationCostModel>(std::move(cost_model)), true) {}
  explicit SimulatedEngine(std::shared_ptr<IterationCostModel> cost_model,
                           bool reuse_buffers = true)
      : cost_model_(std::move(cost_model)), reuse_buffers_(reuse_buffers) {}

  int num_stages() const override { return cost_model_->parallel().pipeline_parallel; }

  double StageTime(const ScheduledBatch& batch) const override {
    if (!reuse_buffers_) {
      return cost_model_->StageCost(batch.ToBatchWork()).Total();
    }
    batch.FillBatchWork(&scratch_);
    return cost_model_->StageCost(scratch_).Total();
  }

  CostBreakdown IterationBreakdown(const ScheduledBatch& batch) const override {
    if (!reuse_buffers_) {
      return cost_model_->IterationCost(batch.ToBatchWork());
    }
    batch.FillBatchWork(&scratch_);
    return cost_model_->IterationCost(scratch_);
  }

  // Stage time plus the iteration's FLOP/byte accounting totals in a single
  // pass over the batch shape — the fast-path replacement for StageTime
  // followed by BatchFlopsAndBytes. Bit-identical to the separate calls.
  double StageTimeAndTotals(const ScheduledBatch& batch, double* flops, double* bytes) const {
    if (!reuse_buffers_) {
      return cost_model_->StageCostAndTotals(batch.ToBatchWork(), flops, bytes).Total();
    }
    batch.FillBatchWork(&scratch_);
    return cost_model_->StageCostAndTotals(scratch_, flops, bytes).Total();
  }

  // The BatchWork built by the most recent StageTime / IterationBreakdown
  // call when buffers are reused (nullptr otherwise). Lets the caller run
  // FLOP/byte accounting for the batch it just timed without rebuilding the
  // shape; only valid until the next engine call.
  const BatchWork* last_work() const { return reuse_buffers_ ? &scratch_ : nullptr; }

  const IterationCostModel& cost_model() const { return *cost_model_; }
  const std::shared_ptr<IterationCostModel>& shared_cost_model() const { return cost_model_; }

 private:
  std::shared_ptr<IterationCostModel> cost_model_;
  bool reuse_buffers_ = true;
  mutable BatchWork scratch_;
};

}  // namespace sarathi

#endif  // SRC_ENGINE_EXECUTION_ENGINE_H_
