// Time-domain execution engine interface.
//
// The replica simulator asks an engine how long a scheduled batch takes — per
// pipeline stage and end-to-end — without caring whether the answer comes
// from an analytical model (SimulatedEngine, the GPU substitute per
// DESIGN.md) or measurements. Value-domain execution (actual token
// generation) lives separately in engine/reference.

#ifndef SRC_ENGINE_EXECUTION_ENGINE_H_
#define SRC_ENGINE_EXECUTION_ENGINE_H_

#include <memory>

#include "src/perfmodel/iteration_cost.h"
#include "src/scheduler/batch.h"

namespace sarathi {

class ExecutionEngine {
 public:
  virtual ~ExecutionEngine() = default;

  // Pipeline depth: how many micro-batches can be in flight.
  virtual int num_stages() const = 0;

  // Execution time of one pipeline stage for this batch.
  virtual double StageTime(const ScheduledBatch& batch) const = 0;

  // End-to-end iteration latency and its component breakdown.
  virtual CostBreakdown IterationBreakdown(const ScheduledBatch& batch) const = 0;
};

// Predicts execution time with the roofline cost model.
class SimulatedEngine : public ExecutionEngine {
 public:
  explicit SimulatedEngine(IterationCostModel cost_model) : cost_model_(std::move(cost_model)) {}

  int num_stages() const override { return cost_model_.parallel().pipeline_parallel; }

  double StageTime(const ScheduledBatch& batch) const override {
    return cost_model_.StageCost(batch.ToBatchWork()).Total();
  }

  CostBreakdown IterationBreakdown(const ScheduledBatch& batch) const override {
    return cost_model_.IterationCost(batch.ToBatchWork());
  }

  const IterationCostModel& cost_model() const { return cost_model_; }

 private:
  IterationCostModel cost_model_;
};

}  // namespace sarathi

#endif  // SRC_ENGINE_EXECUTION_ENGINE_H_
