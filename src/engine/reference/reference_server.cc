#include "src/engine/reference/reference_server.h"

#include "src/common/logging.h"
#include "src/scheduler/scheduler_factory.h"

namespace sarathi {
namespace {

PagedBlockManager::Options BlockOptions(const ReferenceServer::Options& options) {
  PagedBlockManager::Options blocks;
  blocks.num_blocks = options.num_blocks;
  blocks.block_size = options.block_size;
  blocks.watermark = options.watermark;
  blocks.sliding_window = options.model.sliding_window;
  return blocks;
}

}  // namespace

ReferenceServer::ReferenceServer(const Options& options)
    : options_(options), blocks_(BlockOptions(options)),
      scheduler_(MakeScheduler(options.scheduler, &blocks_)),
      engine_(options.model, &blocks_, options.engine) {}

void ReferenceServer::AddRequest(int64_t id, std::vector<int32_t> prompt,
                                 int64_t max_new_tokens, int64_t num_samples) {
  CHECK_GT(max_new_tokens, 0);
  CHECK_GE(num_samples, 1);
  Request request;
  request.id = id;
  request.arrival_time_s = 0.0;
  request.prompt_tokens = static_cast<int64_t>(prompt.size());
  request.output_tokens = max_new_tokens;
  requests_.push_back(std::make_unique<RequestState>(request));
  engine_.RegisterRequest(id, std::move(prompt));
  scheduler_->Enqueue(requests_.back().get());
  sample_ids_[id] = {id};
  if (num_samples > 1) {
    pending_forks_[id] = num_samples - 1;
  }
}

const std::vector<int64_t>& ReferenceServer::SampleIds(int64_t id) const {
  auto it = sample_ids_.find(id);
  CHECK(it != sample_ids_.end()) << "unknown request " << id;
  return it->second;
}

void ReferenceServer::MaterializeForks(const ScheduledBatch& batch) {
  for (const auto& item : batch.items) {
    RequestState* parent = item.request;
    if (item.is_decode ||
        parent->prefill_done() + item.num_tokens != parent->prefill_target()) {
      continue;
    }
    auto plan = pending_forks_.find(parent->id());
    if (plan == pending_forks_.end()) {
      continue;
    }
    for (int64_t s = 0; s < plan->second; ++s) {
      int64_t child_id = next_fork_id_++;
      // Child state mirrors the parent *after* this prefill completes.
      RequestState child_state = RequestState::ForkedFrom(*parent, child_id);
      child_state.AdvancePrefill(child_state.remaining_prefill());
      requests_.push_back(std::make_unique<RequestState>(child_state));
      RequestState* child = requests_.back().get();

      blocks_.Fork(parent->id(), child_id);
      engine_.ForkRequest(parent->id(), child_id);
      sample_ids_[parent->id()].push_back(child_id);

      // The fork resamples the child's latest token; apply EOS stopping.
      if (options_.engine.eos_token >= 0 &&
          engine_.GeneratedTokens(child_id).back() == options_.engine.eos_token) {
        child->TruncateOutputAt(child->generated());
      }
      if (child->finished()) {
        blocks_.Release(child_id);
        child->set_phase(RequestPhase::kFinished);
      } else {
        scheduler_->AdoptRunning(child);
      }
    }
    pending_forks_.erase(plan);
  }
}

Status ReferenceServer::Run(int64_t max_iterations) {
  while (scheduler_->HasWork()) {
    ScheduledBatch batch = scheduler_->Schedule();
    if (batch.empty()) {
      return InternalError("scheduler " + scheduler_->name() +
                           " deadlocked with work outstanding");
    }
    engine_.ExecuteBatch(batch);
    MaterializeForks(batch);
    scheduler_->OnBatchComplete(batch);
    ++iterations_;
    if (iterations_ > max_iterations) {
      return InternalError("runaway scheduling loop: exceeded " +
                           std::to_string(max_iterations) + " iterations");
    }
  }
  return Status::Ok();
}

}  // namespace sarathi
