#include "src/engine/reference/tensor.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace sarathi {

void Matrix::RandomInit(Rng& rng, double stddev) {
  for (auto& v : data_) {
    v = static_cast<float>(rng.Normal(0.0, stddev));
  }
}

Vec Matrix::VecMul(const Vec& x) const {
  CHECK_EQ(static_cast<int64_t>(x.size()), rows_);
  Vec y(static_cast<size_t>(cols_), 0.0f);
  for (int64_t r = 0; r < rows_; ++r) {
    float xv = x[static_cast<size_t>(r)];
    if (xv == 0.0f) {
      continue;
    }
    const float* row = &data_[r * cols_];
    for (int64_t c = 0; c < cols_; ++c) {
      y[static_cast<size_t>(c)] += xv * row[c];
    }
  }
  return y;
}

void AddInPlace(Vec& x, const Vec& y) {
  CHECK_EQ(x.size(), y.size());
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] += y[i];
  }
}

Vec RmsNorm(const Vec& x, const Vec& gain) {
  CHECK_EQ(x.size(), gain.size());
  double ss = 0.0;
  for (float v : x) {
    ss += static_cast<double>(v) * static_cast<double>(v);
  }
  double scale = 1.0 / std::sqrt(ss / static_cast<double>(x.size()) + 1e-6);
  Vec y(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    y[i] = static_cast<float>(static_cast<double>(x[i]) * scale) * gain[i];
  }
  return y;
}

float Dot(const float* a, const float* b, int64_t n) {
  float sum = 0.0f;
  for (int64_t i = 0; i < n; ++i) {
    sum += a[i] * b[i];
  }
  return sum;
}

void Softmax(Vec& x) {
  CHECK(!x.empty());
  float max = *std::max_element(x.begin(), x.end());
  double sum = 0.0;
  for (auto& v : x) {
    v = std::exp(v - max);
    sum += v;
  }
  for (auto& v : x) {
    v = static_cast<float>(v / sum);
  }
}

float Silu(float x) { return x / (1.0f + std::exp(-x)); }

float Gelu(float x) {
  return 0.5f * x * (1.0f + std::tanh(0.7978845608f * (x + 0.044715f * x * x * x)));
}

int32_t Argmax(const Vec& x) {
  CHECK(!x.empty());
  return static_cast<int32_t>(std::max_element(x.begin(), x.end()) - x.begin());
}

}  // namespace sarathi
