// Physical paged KV-cache storage for the reference CPU transformer.
//
// Mirrors PagedAttention's memory layout: KV values live in fixed-size
// physical blocks; a sequence reaches its entries through the block table the
// PagedBlockManager assigned it. Sliding-window models recycle slots
// cyclically within a capped table, exactly as the block manager caps block
// counts for windowed sequences.

#ifndef SRC_ENGINE_REFERENCE_KV_STORE_H_
#define SRC_ENGINE_REFERENCE_KV_STORE_H_

#include <cstdint>
#include <vector>

namespace sarathi {

class KvStore {
 public:
  struct Options {
    int64_t num_blocks = 0;
    int64_t block_size = 16;
    int64_t num_layers = 0;
    int64_t kv_dim = 0;  // num_kv_heads * head_dim.
    // Sliding window span in tokens (0 = unbounded). Must match the paired
    // PagedBlockManager's window so logical->physical mapping agrees.
    int64_t sliding_window = 0;
  };

  explicit KvStore(const Options& options);

  // Writes the K and V vectors (each kv_dim floats) for logical token
  // position `pos` of a sequence whose block table is `table`.
  void Write(const std::vector<int64_t>& table, int64_t layer, int64_t pos, const float* k,
             const float* v);

  // Pointers to the stored K/V vectors for a logical position.
  const float* ReadK(const std::vector<int64_t>& table, int64_t layer, int64_t pos) const;
  const float* ReadV(const std::vector<int64_t>& table, int64_t layer, int64_t pos) const;

  // Copies every token entry (all layers, K and V) of one physical block to
  // another — the engine-side half of a block-manager copy-on-write.
  void CopyBlock(int64_t from_block, int64_t to_block);

  int64_t block_size() const { return options_.block_size; }

 private:
  // Logical position -> (block index within table, slot within block).
  void Locate(const std::vector<int64_t>& table, int64_t pos, int64_t* block_index,
              int64_t* slot) const;

  // Flat offset of one (block, slot, layer, k_or_v) entry.
  int64_t Offset(int64_t physical_block, int64_t slot, int64_t layer, bool is_v) const;

  Options options_;
  // Capacity in tokens of a windowed sequence's block table; positions wrap
  // modulo this. 0 for unbounded tables.
  int64_t window_slots_;
  std::vector<float> data_;
};

}  // namespace sarathi

#endif  // SRC_ENGINE_REFERENCE_KV_STORE_H_
