#include "src/engine/reference/sampler.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "src/common/logging.h"

namespace sarathi {

int32_t Sampler::Sample(const Vec& logits) {
  CHECK(!logits.empty());
  if (params_.temperature <= 0.0) {
    return Argmax(logits);
  }

  // Candidate set: all tokens, or the top-k by logit.
  std::vector<int32_t> candidates(logits.size());
  std::iota(candidates.begin(), candidates.end(), 0);
  if (params_.top_k > 0 && params_.top_k < static_cast<int64_t>(logits.size())) {
    std::partial_sort(candidates.begin(), candidates.begin() + params_.top_k,
                      candidates.end(), [&logits](int32_t a, int32_t b) {
                        return logits[static_cast<size_t>(a)] > logits[static_cast<size_t>(b)];
                      });
    candidates.resize(static_cast<size_t>(params_.top_k));
  }

  // Softmax over the candidates at the given temperature.
  double max_logit = logits[static_cast<size_t>(candidates[0])];
  for (int32_t c : candidates) {
    max_logit = std::max(max_logit, static_cast<double>(logits[static_cast<size_t>(c)]));
  }
  std::vector<double> weights(candidates.size());
  double total = 0.0;
  for (size_t i = 0; i < candidates.size(); ++i) {
    double logit = logits[static_cast<size_t>(candidates[i])];
    weights[i] = std::exp((logit - max_logit) / params_.temperature);
    total += weights[i];
  }

  double draw = rng_.Uniform(0.0, total);
  double cumulative = 0.0;
  for (size_t i = 0; i < candidates.size(); ++i) {
    cumulative += weights[i];
    if (draw < cumulative) {
      return candidates[i];
    }
  }
  return candidates.back();
}

}  // namespace sarathi
