// Minimal dense float math for the reference CPU transformer.
//
// The reference model's dimensions are tiny (hidden size tens of floats), so
// clarity beats BLAS here. Vec is a plain std::vector<float>; Matrix is
// row-major.

#ifndef SRC_ENGINE_REFERENCE_TENSOR_H_
#define SRC_ENGINE_REFERENCE_TENSOR_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"

namespace sarathi {

using Vec = std::vector<float>;

class Matrix {
 public:
  Matrix() = default;
  Matrix(int64_t rows, int64_t cols) : rows_(rows), cols_(cols), data_(rows * cols) {}

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }

  float& At(int64_t r, int64_t c) { return data_[r * cols_ + c]; }
  float At(int64_t r, int64_t c) const { return data_[r * cols_ + c]; }

  // Fills with N(0, stddev) entries from `rng`.
  void RandomInit(Rng& rng, double stddev);

  // y = x^T * M for a row vector x of length rows(); y has length cols().
  Vec VecMul(const Vec& x) const;

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<float> data_;
};

// Elementwise helpers.
void AddInPlace(Vec& x, const Vec& y);
Vec RmsNorm(const Vec& x, const Vec& gain);
float Dot(const float* a, const float* b, int64_t n);
void Softmax(Vec& x);
float Silu(float x);
float Gelu(float x);
int32_t Argmax(const Vec& x);

}  // namespace sarathi

#endif  // SRC_ENGINE_REFERENCE_TENSOR_H_
