#include "src/engine/reference/kv_store.h"

#include <cstring>

#include "src/common/logging.h"

namespace sarathi {

KvStore::KvStore(const Options& options) : options_(options) {
  CHECK_GT(options_.num_blocks, 0);
  CHECK_GT(options_.block_size, 0);
  CHECK_GT(options_.num_layers, 0);
  CHECK_GT(options_.kv_dim, 0);
  if (options_.sliding_window > 0) {
    // Same cap rule as PagedBlockManager::BlocksForTokens: window plus one
    // boundary block, rounded up to whole blocks.
    int64_t cap_tokens = options_.sliding_window + options_.block_size;
    int64_t cap_blocks = (cap_tokens + options_.block_size - 1) / options_.block_size;
    window_slots_ = cap_blocks * options_.block_size;
  } else {
    window_slots_ = 0;
  }
  data_.resize(static_cast<size_t>(options_.num_blocks * options_.block_size *
                                   options_.num_layers * 2 * options_.kv_dim));
}

void KvStore::Locate(const std::vector<int64_t>& table, int64_t pos, int64_t* block_index,
                     int64_t* slot) const {
  CHECK_GE(pos, 0);
  int64_t logical_slot = window_slots_ > 0 ? pos % window_slots_ : pos;
  *block_index = logical_slot / options_.block_size;
  *slot = logical_slot % options_.block_size;
  CHECK_LT(*block_index, static_cast<int64_t>(table.size()))
      << "position " << pos << " not covered by block table";
}

void KvStore::CopyBlock(int64_t from_block, int64_t to_block) {
  CHECK_GE(from_block, 0);
  CHECK_LT(from_block, options_.num_blocks);
  CHECK_GE(to_block, 0);
  CHECK_LT(to_block, options_.num_blocks);
  CHECK_NE(from_block, to_block);
  int64_t per_block =
      options_.block_size * options_.num_layers * 2 * options_.kv_dim;
  std::memcpy(&data_[static_cast<size_t>(to_block * per_block)],
              &data_[static_cast<size_t>(from_block * per_block)],
              sizeof(float) * static_cast<size_t>(per_block));
}

int64_t KvStore::Offset(int64_t physical_block, int64_t slot, int64_t layer, bool is_v) const {
  CHECK_GE(physical_block, 0);
  CHECK_LT(physical_block, options_.num_blocks);
  int64_t token_entry = physical_block * options_.block_size + slot;
  int64_t per_token = options_.num_layers * 2 * options_.kv_dim;
  return token_entry * per_token + (layer * 2 + (is_v ? 1 : 0)) * options_.kv_dim;
}

void KvStore::Write(const std::vector<int64_t>& table, int64_t layer, int64_t pos,
                    const float* k, const float* v) {
  int64_t block_index = 0;
  int64_t slot = 0;
  Locate(table, pos, &block_index, &slot);
  int64_t physical = table[static_cast<size_t>(block_index)];
  std::memcpy(&data_[static_cast<size_t>(Offset(physical, slot, layer, false))], k,
              sizeof(float) * static_cast<size_t>(options_.kv_dim));
  std::memcpy(&data_[static_cast<size_t>(Offset(physical, slot, layer, true))], v,
              sizeof(float) * static_cast<size_t>(options_.kv_dim));
}

const float* KvStore::ReadK(const std::vector<int64_t>& table, int64_t layer,
                            int64_t pos) const {
  int64_t block_index = 0;
  int64_t slot = 0;
  Locate(table, pos, &block_index, &slot);
  int64_t physical = table[static_cast<size_t>(block_index)];
  return &data_[static_cast<size_t>(Offset(physical, slot, layer, false))];
}

const float* KvStore::ReadV(const std::vector<int64_t>& table, int64_t layer,
                            int64_t pos) const {
  int64_t block_index = 0;
  int64_t slot = 0;
  Locate(table, pos, &block_index, &slot);
  int64_t physical = table[static_cast<size_t>(block_index)];
  return &data_[static_cast<size_t>(Offset(physical, slot, layer, true))];
}

}  // namespace sarathi
