#include "src/engine/reference/reference_engine.h"

#include "src/common/logging.h"

namespace sarathi {

ReferenceEngine::ReferenceEngine(const TinyModelConfig& config, PagedBlockManager* blocks,
                                 const ReferenceEngineOptions& options)
    : config_(config), options_(options), model_(config), blocks_(blocks),
      store_(KvStore::Options{blocks->num_blocks(), blocks->block_size(), config.num_layers,
                              config.kv_dim(), config.sliding_window}) {
  CHECK(blocks_ != nullptr);
}

uint64_t ReferenceEngine::StreamSeed(SeqId id) const {
  // Derived only from the base seed and the request id: scheduler-order
  // independent by construction.
  return options_.sampling_seed ^ (static_cast<uint64_t>(id) * 0x9E3779B97F4A7C15ull);
}

void ReferenceEngine::RegisterRequest(SeqId id, std::vector<int32_t> prompt) {
  CHECK(!prompt.empty());
  CHECK(!sequences_.contains(id)) << "request " << id << " already registered";
  sequences_.emplace(
      id, SequenceState{std::move(prompt), {}, Sampler(options_.sampling, StreamSeed(id)), {}});
}

void ReferenceEngine::ForkRequest(SeqId parent, SeqId child) {
  auto it = sequences_.find(parent);
  CHECK(it != sequences_.end()) << "request " << parent << " not registered";
  CHECK(!sequences_.contains(child)) << "request " << child << " already registered";
  CHECK(!it->second.generated.empty()) << "fork before the first token";
  CHECK(!it->second.last_logits.empty());
  SequenceState state = it->second;
  state.sampler = Sampler(options_.sampling, StreamSeed(child));
  // The child's latest token is its own draw from the shared fork-point
  // logits (all earlier history is common by definition).
  state.generated.back() = state.sampler.Sample(state.last_logits);
  sequences_.emplace(child, std::move(state));
}

void ReferenceEngine::EmitToken(RequestState* request, SequenceState* seq, const Vec& logits) {
  int32_t token = seq->sampler.Sample(logits);
  seq->generated.push_back(token);
  seq->last_logits = logits;
  if (options_.eos_token >= 0 && token == options_.eos_token) {
    // The token just emitted becomes the last of the generation (state
    // advances in OnBatchComplete, so the cap is generated-so-far + 1).
    request->TruncateOutputAt(request->generated() + 1);
  }
}

int32_t ReferenceEngine::TokenAt(const SequenceState& seq, int64_t pos) const {
  auto prompt_len = static_cast<int64_t>(seq.prompt.size());
  if (pos < prompt_len) {
    return seq.prompt[static_cast<size_t>(pos)];
  }
  int64_t gen_index = pos - prompt_len;
  CHECK_LT(gen_index, static_cast<int64_t>(seq.generated.size()));
  return seq.generated[static_cast<size_t>(gen_index)];
}

void ReferenceEngine::ExecuteBatch(const ScheduledBatch& batch) {
  // Apply data copies for any copy-on-write the block manager performed
  // while the scheduler reserved decode slots for forked sequences.
  for (const auto& [seq_id, cow] : blocks_->TakePendingCows()) {
    store_.CopyBlock(cow.old_block, cow.new_block);
  }
  for (const auto& item : batch.items) {
    RequestState* request = item.request;
    auto it = sequences_.find(request->id());
    CHECK(it != sequences_.end()) << "request " << request->id() << " not registered";
    SequenceState& seq = it->second;

    if (item.is_decode) {
      // Input: the last emitted token, at position context_len-1. Its KV slot
      // was reserved by the scheduler (PrepareDecodeSlot) when the decode was
      // packed, so the block table already covers the write.
      int64_t pos = request->context_len() - 1;
      std::vector<int32_t> input = {TokenAt(seq, pos)};
      Vec logits = model_.ForwardChunk(input, pos, blocks_->BlockTable(request->id()), &store_);
      EmitToken(request, &seq, logits);
    } else {
      // Prefill chunk [prefill_done, prefill_done + n). After preemption the
      // recompute target covers prompt + previously generated tokens, and
      // TokenAt serves both ranges transparently.
      int64_t start = request->prefill_done();
      std::vector<int32_t> input(static_cast<size_t>(item.num_tokens));
      for (int64_t i = 0; i < item.num_tokens; ++i) {
        input[static_cast<size_t>(i)] = TokenAt(seq, start + i);
      }
      Vec logits =
          model_.ForwardChunk(input, start, blocks_->BlockTable(request->id()), &store_);
      if (start + item.num_tokens == request->prefill_target()) {
        // Final chunk emits the first (or, post-preemption, next) token.
        EmitToken(request, &seq, logits);
      }
    }
  }
}

const std::vector<int32_t>& ReferenceEngine::GeneratedTokens(SeqId id) const {
  auto it = sequences_.find(id);
  CHECK(it != sequences_.end()) << "request " << id << " not registered";
  return it->second.generated;
}

}  // namespace sarathi
