#include "src/engine/reference/tiny_model.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/common/rng.h"

namespace sarathi {

TinyModel::TinyModel(const TinyModelConfig& config) : config_(config) {
  CHECK_EQ(config_.num_heads * config_.head_dim, config_.hidden)
      << "residual stream requires q_dim == hidden";
  CHECK_EQ(config_.num_heads % config_.num_kv_heads, 0);

  Rng rng(config_.seed);
  constexpr double kStd = 0.08;
  auto init = [&](Matrix& m, int64_t rows, int64_t cols) {
    m = Matrix(rows, cols);
    m.RandomInit(rng, kStd);
  };
  auto init_gain = [&](Vec& g, int64_t n) {
    g.resize(static_cast<size_t>(n));
    for (auto& v : g) {
      v = static_cast<float>(1.0 + rng.Normal(0.0, 0.02));
    }
  };

  init(embedding_, config_.vocab, config_.hidden);
  init(lm_head_, config_.hidden, config_.vocab);
  init_gain(ln_final_, config_.hidden);

  layers_.resize(static_cast<size_t>(config_.num_layers));
  for (auto& layer : layers_) {
    init(layer.wq, config_.hidden, config_.q_dim());
    init(layer.wk, config_.hidden, config_.kv_dim());
    init(layer.wv, config_.hidden, config_.kv_dim());
    init(layer.wo, config_.q_dim(), config_.hidden);
    if (config_.gated_ffn) {
      init(layer.w_gate, config_.hidden, config_.ffn_hidden);
    }
    init(layer.w_up, config_.hidden, config_.ffn_hidden);
    init(layer.w_down, config_.ffn_hidden, config_.hidden);
    init_gain(layer.ln_attn, config_.hidden);
    init_gain(layer.ln_ffn, config_.hidden);
  }
}

void TinyModel::Rope(float* vec, int64_t heads, int64_t pos) const {
  int64_t hd = config_.head_dim;
  for (int64_t h = 0; h < heads; ++h) {
    float* head = vec + h * hd;
    for (int64_t j = 0; j < hd / 2; ++j) {
      double freq = std::pow(10000.0, -2.0 * static_cast<double>(j) / static_cast<double>(hd));
      double angle = static_cast<double>(pos) * freq;
      auto cos_a = static_cast<float>(std::cos(angle));
      auto sin_a = static_cast<float>(std::sin(angle));
      float x0 = head[2 * j];
      float x1 = head[2 * j + 1];
      head[2 * j] = x0 * cos_a - x1 * sin_a;
      head[2 * j + 1] = x0 * sin_a + x1 * cos_a;
    }
  }
}

Vec TinyModel::Attend(const Vec& q, int64_t layer, int64_t pos,
                      const std::vector<int64_t>& table, const KvStore& store) const {
  int64_t hd = config_.head_dim;
  int64_t group = config_.num_heads / config_.num_kv_heads;
  float scale = 1.0f / std::sqrt(static_cast<float>(hd));

  int64_t lo = 0;
  if (config_.sliding_window > 0) {
    lo = std::max<int64_t>(0, pos - config_.sliding_window + 1);
  }
  int64_t span = pos - lo + 1;

  Vec context(static_cast<size_t>(config_.q_dim()), 0.0f);
  Vec scores(static_cast<size_t>(span));
  for (int64_t h = 0; h < config_.num_heads; ++h) {
    const float* qh = q.data() + h * hd;
    int64_t kv_head = h / group;
    for (int64_t p = lo; p <= pos; ++p) {
      const float* k = store.ReadK(table, layer, p) + kv_head * hd;
      scores[static_cast<size_t>(p - lo)] = Dot(qh, k, hd) * scale;
    }
    Softmax(scores);
    float* out = context.data() + h * hd;
    for (int64_t p = lo; p <= pos; ++p) {
      const float* v = store.ReadV(table, layer, p) + kv_head * hd;
      float w = scores[static_cast<size_t>(p - lo)];
      for (int64_t d = 0; d < hd; ++d) {
        out[d] += w * v[d];
      }
    }
  }
  return layers_[static_cast<size_t>(layer)].wo.VecMul(context);
}

Vec TinyModel::FfnForward(const Layer& layer, const Vec& x) const {
  Vec up = layer.w_up.VecMul(x);
  if (config_.gated_ffn) {
    Vec gate = layer.w_gate.VecMul(x);
    for (size_t i = 0; i < up.size(); ++i) {
      up[i] *= Silu(gate[i]);
    }
  } else {
    for (auto& v : up) {
      v = Gelu(v);
    }
  }
  return layer.w_down.VecMul(up);
}

Vec TinyModel::ForwardChunk(const std::vector<int32_t>& tokens, int64_t start_pos,
                            const std::vector<int64_t>& table, KvStore* store) const {
  CHECK(!tokens.empty());
  CHECK(store != nullptr);
  int64_t n = static_cast<int64_t>(tokens.size());

  // Residual stream for each chunk token.
  std::vector<Vec> x(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    int32_t token = tokens[static_cast<size_t>(i)];
    CHECK_GE(token, 0);
    CHECK_LT(token, config_.vocab);
    Vec& row = x[static_cast<size_t>(i)];
    row.resize(static_cast<size_t>(config_.hidden));
    for (int64_t d = 0; d < config_.hidden; ++d) {
      row[static_cast<size_t>(d)] = embedding_.At(token, d);
    }
  }

  for (int64_t l = 0; l < config_.num_layers; ++l) {
    const Layer& layer = layers_[static_cast<size_t>(l)];
    // Projections + KV writes for the whole chunk first: token i's attention
    // may then read the in-chunk keys of tokens <= i from the store, exactly
    // as a batched kernel reads the freshly appended KV pages.
    std::vector<Vec> q(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      int64_t pos = start_pos + i;
      Vec normed = RmsNorm(x[static_cast<size_t>(i)], layer.ln_attn);
      q[static_cast<size_t>(i)] = layer.wq.VecMul(normed);
      Vec k = layer.wk.VecMul(normed);
      Vec v = layer.wv.VecMul(normed);
      Rope(q[static_cast<size_t>(i)].data(), config_.num_heads, pos);
      Rope(k.data(), config_.num_kv_heads, pos);
      store->Write(table, l, pos, k.data(), v.data());
    }
    for (int64_t i = 0; i < n; ++i) {
      Vec attn = Attend(q[static_cast<size_t>(i)], l, start_pos + i, table, *store);
      AddInPlace(x[static_cast<size_t>(i)], attn);
      Vec ffn = FfnForward(layer, RmsNorm(x[static_cast<size_t>(i)], layer.ln_ffn));
      AddInPlace(x[static_cast<size_t>(i)], ffn);
    }
  }

  Vec final_state = RmsNorm(x[static_cast<size_t>(n - 1)], ln_final_);
  return lm_head_.VecMul(final_state);
}

}  // namespace sarathi
