// End-to-end value-domain serving loop: scheduler + paged KV + real model.
//
// Drives any of the four scheduling policies against the TinyModel until all
// requests complete, returning the generated token streams. Because greedy
// decoding over fixed weights is deterministic, every scheduler — whatever
// batch shapes, chunk boundaries or preemptions it produces — must emit
// identical tokens; the integration tests assert exactly that.

#ifndef SRC_ENGINE_REFERENCE_REFERENCE_SERVER_H_
#define SRC_ENGINE_REFERENCE_REFERENCE_SERVER_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/engine/reference/reference_engine.h"
#include "src/memory/block_manager.h"
#include "src/scheduler/scheduler.h"

namespace sarathi {

class ReferenceServer {
 public:
  struct Options {
    TinyModelConfig model;
    SchedulerConfig scheduler;
    // Sampling / EOS behaviour of the engine.
    ReferenceEngineOptions engine;
    int64_t num_blocks = 4096;
    int64_t block_size = 16;
    double watermark = 0.0;
  };

  explicit ReferenceServer(const Options& options);

  // Registers a request; all requests are considered arrived at t=0. With
  // num_samples > 1, the prompt is prefilled once and (num_samples - 1)
  // siblings fork from it at prefill completion (vLLM-style parallel
  // sampling): the prompt KV is physically shared, divergence goes through
  // copy-on-write, and each sample owns an independent sampling stream.
  void AddRequest(int64_t id, std::vector<int32_t> prompt, int64_t max_new_tokens,
                  int64_t num_samples = 1);

  // Sequence ids of all samples of request `id` (the parent first). Sibling
  // ids are synthesized; they materialize once the parent's prefill
  // completes.
  const std::vector<int64_t>& SampleIds(int64_t id) const;

  // Runs the scheduling loop to completion. Returns InternalError (with the
  // loop intact for inspection) if the scheduler deadlocks (has work but
  // schedules nothing) or exceeds `max_iterations`.
  Status Run(int64_t max_iterations = 1000000);

  const std::vector<int32_t>& GeneratedTokens(int64_t id) const {
    return engine_.GeneratedTokens(id);
  }

  int64_t iterations() const { return iterations_; }
  const Scheduler& scheduler() const { return *scheduler_; }
  const PagedBlockManager& blocks() const { return blocks_; }

 private:
  // Forks any planned siblings of parents whose prefill just completed in
  // `batch`. Runs after engine execution (fork-point logits exist) and
  // before OnBatchComplete (parent block tables still held even if the
  // parent finishes).
  void MaterializeForks(const ScheduledBatch& batch);

  Options options_;
  PagedBlockManager blocks_;
  std::unique_ptr<Scheduler> scheduler_;
  ReferenceEngine engine_;
  std::vector<std::unique_ptr<RequestState>> requests_;
  // Parent id -> pending sibling count.
  std::unordered_map<int64_t, int64_t> pending_forks_;
  // Request id -> all of its sample sequence ids (parent first).
  std::unordered_map<int64_t, std::vector<int64_t>> sample_ids_;
  int64_t next_fork_id_ = 1000000000;
  int64_t iterations_ = 0;
};

}  // namespace sarathi

#endif  // SRC_ENGINE_REFERENCE_REFERENCE_SERVER_H_
