// Value-domain batch executor: runs scheduled batches on the TinyModel.
//
// Bridges the scheduler's batch abstraction to actual token generation. Each
// prefill chunk forwards its slice of the prompt; each decode forwards the
// previously emitted token; greedy samples append to the request's output.
// Decode KV slots are reserved by the scheduler at batch-formation time
// (Scheduler::PrepareDecodeSlot), so block tables always cover the positions
// written here.

#ifndef SRC_ENGINE_REFERENCE_REFERENCE_ENGINE_H_
#define SRC_ENGINE_REFERENCE_REFERENCE_ENGINE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/engine/reference/kv_store.h"
#include "src/engine/reference/sampler.h"
#include "src/engine/reference/tiny_model.h"
#include "src/memory/block_manager.h"
#include "src/scheduler/batch.h"

namespace sarathi {

struct ReferenceEngineOptions {
  SamplingParams sampling;  // Default: greedy.
  // Token id that terminates generation early (-1 disables EOS stopping).
  int32_t eos_token = -1;
  // Base seed for per-request sampling streams (each request derives an
  // independent stream from this and its id, so outputs are identical across
  // scheduling policies).
  uint64_t sampling_seed = 7777;
};

class ReferenceEngine {
 public:
  ReferenceEngine(const TinyModelConfig& config, PagedBlockManager* blocks,
                  const ReferenceEngineOptions& options = {});

  // Declares a request's prompt token ids before it is first scheduled.
  void RegisterRequest(SeqId id, std::vector<int32_t> prompt);

  // Forks `child` from `parent` for parallel sampling: the child inherits
  // prompt and generated-so-far history and KV block tables (zero-copy via
  // PagedBlockManager::Fork), gets its own sampling stream, and — matching
  // vLLM's n>1 semantics — resamples its latest token from the parent's most
  // recent logits so branches diverge immediately.
  void ForkRequest(SeqId parent, SeqId child);

  // Executes every item of the batch (prefill chunks and decodes), sampling
  // and recording output tokens where the schedule emits them. Applies any
  // pending copy-on-write data moves the block manager queued.
  void ExecuteBatch(const ScheduledBatch& batch);

  const std::vector<int32_t>& GeneratedTokens(SeqId id) const;
  const TinyModel& model() const { return model_; }

 private:
  struct SequenceState {
    std::vector<int32_t> prompt;
    std::vector<int32_t> generated;
    Sampler sampler;
    // Most recent next-token logits (fork points resample from these).
    Vec last_logits;
  };

  // Per-request sampling stream seed.
  uint64_t StreamSeed(SeqId id) const;

  // Token id at logical position `pos` (prompt followed by generated).
  int32_t TokenAt(const SequenceState& seq, int64_t pos) const;

  // Samples the next token for `seq`, records it, and applies EOS stopping
  // to `request`.
  void EmitToken(RequestState* request, SequenceState* seq, const Vec& logits);

  TinyModelConfig config_;
  ReferenceEngineOptions options_;
  TinyModel model_;
  PagedBlockManager* blocks_;
  KvStore store_;
  std::unordered_map<SeqId, SequenceState> sequences_;
};

}  // namespace sarathi

#endif  // SRC_ENGINE_REFERENCE_REFERENCE_ENGINE_H_
