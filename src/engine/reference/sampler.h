// Token sampling for the reference engine.
//
// Greedy (temperature 0) or temperature/top-k sampling with a per-request
// random stream. Each emitted token consumes exactly one draw from its
// request's stream, so generation stays bit-identical across scheduling
// policies even when sampling stochastically — chunking, batching and
// preemption may reorder *work*, never a request's own token sequence.

#ifndef SRC_ENGINE_REFERENCE_SAMPLER_H_
#define SRC_ENGINE_REFERENCE_SAMPLER_H_

#include <cstdint>

#include "src/common/rng.h"
#include "src/engine/reference/tensor.h"

namespace sarathi {

struct SamplingParams {
  // 0 = greedy argmax; > 0 softens the distribution.
  double temperature = 0.0;
  // Keep only the k most likely tokens before sampling (0 = all).
  int64_t top_k = 0;
};

class Sampler {
 public:
  Sampler(const SamplingParams& params, uint64_t seed) : params_(params), rng_(seed) {}

  // Draws the next token from `logits`, consuming one random draw when
  // temperature > 0 (none for greedy).
  int32_t Sample(const Vec& logits);

 private:
  SamplingParams params_;
  Rng rng_;
};

}  // namespace sarathi

#endif  // SRC_ENGINE_REFERENCE_SAMPLER_H_
