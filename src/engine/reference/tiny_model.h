// A real (tiny) decoder-only transformer executed on the CPU.
//
// This is the value-domain substitute for the paper's GPU models: it performs
// genuine forward passes — RMSNorm, RoPE, grouped-query attention against a
// paged KV store, gated FFN — over deterministic random weights. Its purpose
// is to prove the *functional* correctness of the scheduler machinery:
// chunked prefills must produce bit-identical results to unchunked ones, and
// hybrid batches must not perturb any sequence's outputs (tests/engine).
//
// Chunks are processed layer-parallel like a real engine (all chunk tokens
// through layer l before layer l+1), so cross-chunk attention really does
// read earlier chunks' KV from the paged store — the property chunked
// prefill relies on (§4.1).

#ifndef SRC_ENGINE_REFERENCE_TINY_MODEL_H_
#define SRC_ENGINE_REFERENCE_TINY_MODEL_H_

#include <cstdint>
#include <vector>

#include "src/engine/reference/kv_store.h"
#include "src/engine/reference/tensor.h"

namespace sarathi {

struct TinyModelConfig {
  int64_t num_layers = 2;
  int64_t hidden = 64;
  int64_t num_heads = 4;
  int64_t num_kv_heads = 2;
  int64_t head_dim = 16;  // num_heads * head_dim must equal hidden.
  int64_t ffn_hidden = 128;
  int64_t vocab = 131;
  bool gated_ffn = true;
  // Sliding-window attention span (0 = full attention).
  int64_t sliding_window = 0;
  uint64_t seed = 20240701;

  int64_t q_dim() const { return num_heads * head_dim; }
  int64_t kv_dim() const { return num_kv_heads * head_dim; }
};

class TinyModel {
 public:
  explicit TinyModel(const TinyModelConfig& config);

  const TinyModelConfig& config() const { return config_; }

  // Processes `tokens` occupying absolute positions [start_pos, start_pos+n)
  // of one sequence. KV for these positions is written into `store` through
  // `table`; attention reads all prior positions (window permitting) from the
  // store. Returns the logits of the chunk's final token.
  Vec ForwardChunk(const std::vector<int32_t>& tokens, int64_t start_pos,
                   const std::vector<int64_t>& table, KvStore* store) const;

  // Greedy sampling.
  int32_t Sample(const Vec& logits) const { return Argmax(logits); }

 private:
  struct Layer {
    Matrix wq;  // [hidden, q_dim]
    Matrix wk;  // [hidden, kv_dim]
    Matrix wv;  // [hidden, kv_dim]
    Matrix wo;  // [q_dim, hidden]
    Matrix w_gate;  // [hidden, ffn] (gated only)
    Matrix w_up;    // [hidden, ffn]
    Matrix w_down;  // [ffn, hidden]
    Vec ln_attn;  // RMSNorm gains.
    Vec ln_ffn;
  };

  // Applies rotary position embedding in place to a q_dim- or kv_dim-sized
  // vector of `heads` heads at absolute position `pos`.
  void Rope(float* vec, int64_t heads, int64_t pos) const;

  // Attention output (wo applied) for one query vector at absolute position
  // `pos`, reading K/V from the store.
  Vec Attend(const Vec& q, int64_t layer, int64_t pos, const std::vector<int64_t>& table,
             const KvStore& store) const;

  Vec FfnForward(const Layer& layer, const Vec& x) const;

  TinyModelConfig config_;
  Matrix embedding_;  // [vocab, hidden]
  Matrix lm_head_;    // [hidden, vocab]
  Vec ln_final_;
  std::vector<Layer> layers_;
};

}  // namespace sarathi

#endif  // SRC_ENGINE_REFERENCE_TINY_MODEL_H_
