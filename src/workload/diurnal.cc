#include "src/workload/diurnal.h"

#include <cmath>
#include <functional>
#include <vector>

#include "src/common/logging.h"
#include "src/common/rng.h"

namespace sarathi {
namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

// Lewis-Shedler thinning: draw candidate arrivals from a homogeneous Poisson
// process at the envelope rate max_rate, keep each candidate at time t with
// probability rate(t) / max_rate. The survivors are an exact draw from the
// non-homogeneous process with intensity rate(t), already sorted in time.
std::vector<double> ThinnedArrivals(double max_rate, double duration_s, Rng& rng,
                                    const std::function<double(double)>& rate) {
  std::vector<double> arrivals;
  arrivals.reserve(static_cast<size_t>(max_rate * duration_s * 0.75) + 16);
  double t = 0.0;
  for (;;) {
    t += rng.Exponential(max_rate);
    if (t >= duration_s) {
      break;
    }
    if (rng.Uniform(0.0, 1.0) * max_rate < rate(t)) {
      arrivals.push_back(t);
    }
  }
  return arrivals;
}

Trace BuildTrace(const char* name, std::vector<double> arrivals, Rng& rng,
                 const DatasetSpec* dataset, int64_t prompt_tokens,
                 int64_t output_tokens) {
  Trace trace;
  trace.name = name;
  trace.requests.reserve(arrivals.size());
  for (size_t i = 0; i < arrivals.size(); ++i) {
    Request request;
    request.id = static_cast<int64_t>(i);
    request.arrival_time_s = arrivals[i];
    if (dataset != nullptr) {
      RequestShape shape = SampleShape(*dataset, rng);
      request.prompt_tokens = shape.prompt_tokens;
      request.output_tokens = shape.output_tokens;
    } else {
      request.prompt_tokens = prompt_tokens;
      request.output_tokens = output_tokens;
    }
    trace.requests.push_back(request);
  }
  return trace;
}

std::vector<double> DiurnalArrivals(const DiurnalOptions& options, Rng& rng) {
  CHECK_GT(options.mean_qps, 0.0);
  CHECK_GT(options.duration_s, 0.0);
  CHECK_GE(options.peak_to_trough, 1.0);
  CHECK_GT(options.period_s, 0.0);
  double amplitude =
      (options.peak_to_trough - 1.0) / (options.peak_to_trough + 1.0);
  double max_rate = options.mean_qps * (1.0 + amplitude);
  auto rate = [&options, amplitude](double t) {
    return options.mean_qps *
           (1.0 + amplitude *
                      std::cos(kTwoPi * (t - options.peak_at_s) / options.period_s));
  };
  return ThinnedArrivals(max_rate, options.duration_s, rng, rate);
}

std::vector<double> FlashArrivals(const FlashCrowdOptions& options, Rng& rng) {
  CHECK_GT(options.base_qps, 0.0);
  CHECK_GT(options.duration_s, 0.0);
  CHECK_GE(options.flash_mult, 1.0);
  CHECK_GE(options.flash_duration_s, 0.0);
  double max_rate = options.base_qps * options.flash_mult;
  auto rate = [&options](double t) {
    bool in_flash = t >= options.flash_at_s &&
                    t < options.flash_at_s + options.flash_duration_s;
    return in_flash ? options.base_qps * options.flash_mult : options.base_qps;
  };
  return ThinnedArrivals(max_rate, options.duration_s, rng, rate);
}

}  // namespace

Trace GenerateDiurnalTrace(const DatasetSpec& dataset, const DiurnalOptions& options) {
  Rng rng(options.seed);
  std::vector<double> arrivals = DiurnalArrivals(options, rng);
  return BuildTrace("diurnal", std::move(arrivals), rng, &dataset, 0, 0);
}

Trace GenerateFlashCrowdTrace(const DatasetSpec& dataset,
                              const FlashCrowdOptions& options) {
  Rng rng(options.seed);
  std::vector<double> arrivals = FlashArrivals(options, rng);
  return BuildTrace("flash", std::move(arrivals), rng, &dataset, 0, 0);
}

Trace UniformDiurnalTrace(const DiurnalOptions& options, int64_t prompt_tokens,
                          int64_t output_tokens) {
  CHECK_GT(prompt_tokens, 0);
  CHECK_GT(output_tokens, 0);
  Rng rng(options.seed);
  std::vector<double> arrivals = DiurnalArrivals(options, rng);
  return BuildTrace("diurnal", std::move(arrivals), rng, nullptr, prompt_tokens,
                    output_tokens);
}

Trace UniformFlashCrowdTrace(const FlashCrowdOptions& options, int64_t prompt_tokens,
                             int64_t output_tokens) {
  CHECK_GT(prompt_tokens, 0);
  CHECK_GT(output_tokens, 0);
  Rng rng(options.seed);
  std::vector<double> arrivals = FlashArrivals(options, rng);
  return BuildTrace("flash", std::move(arrivals), rng, nullptr, prompt_tokens,
                    output_tokens);
}

}  // namespace sarathi
