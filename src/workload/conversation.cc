#include "src/workload/conversation.h"

#include <algorithm>

#include "src/common/logging.h"

namespace sarathi {

Trace GenerateConversationTrace(const ConversationOptions& options) {
  CHECK_GT(options.num_conversations, 0);
  CHECK_GE(options.continue_probability, 0.0);
  CHECK_LT(options.continue_probability, 1.0);
  Rng rng(options.seed);

  Trace trace;
  trace.name = "conversations";
  double conversation_start = 0.0;
  for (int64_t c = 0; c < options.num_conversations; ++c) {
    if (c > 0 && options.start_qps > 0.0) {
      conversation_start += rng.Exponential(options.start_qps);
    }
    double now = conversation_start;
    int64_t history = 0;  // Accumulated context tokens.
    while (true) {
      int64_t turn = options.user_turn.Sample(rng);
      int64_t reply = options.reply.Sample(rng);
      int64_t prompt = history + turn;
      if (prompt + reply > options.max_context) {
        break;
      }
      Request request;
      request.arrival_time_s = now;
      request.prompt_tokens = prompt;
      request.output_tokens = reply;
      trace.requests.push_back(request);

      history = prompt + reply;
      if (rng.Uniform(0.0, 1.0) >= options.continue_probability) {
        break;
      }
      // Next round arrives after the user reads the reply and types: think
      // time plus a crude per-token reading/serving allowance.
      double allowance = 0.02 * static_cast<double>(reply);
      now += allowance + rng.Exponential(1.0 / options.mean_think_time_s);
    }
  }

  std::stable_sort(trace.requests.begin(), trace.requests.end(),
                   [](const Request& a, const Request& b) {
                     return a.arrival_time_s < b.arrival_time_s;
                   });
  for (size_t i = 0; i < trace.requests.size(); ++i) {
    trace.requests[i].id = static_cast<int64_t>(i);
  }
  return trace;
}

}  // namespace sarathi
