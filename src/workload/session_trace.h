// Session workloads with token identity, for shared-prefix KV reuse.
//
// GenerateConversationTrace (conversation.h) models multi-round prompt
// growth but leaves token content anonymous, so a prefix cache cannot act on
// it. The generators here synthesize the actual token ids: every request
// carries Request::token_ids (prompt ids followed by the scripted reply
// ids), and each round's prompt embeds the previous round verbatim — exactly
// the structure a radix prefix cache exploits (SGLang-style RadixAttention).
//
// Two session shapes:
//  - Multi-turn chat: a shared system prompt, then rounds of
//    user turn -> assistant reply with think-time gaps. Round r+1's prompt
//    is round r's full token stream plus a fresh turn, so the cacheable
//    prefix grows with the conversation and the system prompt is shared
//    across every session.
//  - Agent loop: a shared toolkit preamble, then tool-call steps in tight
//    succession. Each step's prompt is the whole scratchpad (preamble +
//    every prior action and observation); steps are near back-to-back, so
//    hit rates are high and the reuse window short — the agentic pattern
//    that motivates prefix caching in the first place.
//
// All draws come from one seeded Rng, so traces are bit-reproducible and a
// given (options, seed) pair always produces identical token streams.

#ifndef SRC_WORKLOAD_SESSION_TRACE_H_
#define SRC_WORKLOAD_SESSION_TRACE_H_

#include <cstdint>

#include "src/workload/dataset.h"
#include "src/workload/trace.h"

namespace sarathi {

struct MultiTurnChatOptions {
  int64_t num_sessions = 64;
  // Session starts per second (Poisson).
  double start_qps = 0.25;
  // Probability a session continues after each round (geometric; mean
  // rounds = 1 / (1 - p)).
  double continue_probability = 0.7;
  // Tokens of the system prompt shared verbatim by every session; 0 disables
  // cross-session sharing (each session still reuses its own history).
  int64_t system_prompt_tokens = 512;
  // Fresh user-turn and assistant-reply token counts per round.
  LengthDistribution user_turn{120.0, 600.0};
  LengthDistribution reply{415.0, 834.0};
  // Gap between receiving a reply and sending the next turn, exponential
  // with this mean.
  double mean_think_time_s = 30.0;
  // Rounds stop once prompt + reply would exceed this.
  int64_t max_context = 8192;
  // Token ids are drawn uniformly from [0, vocab_size).
  int32_t vocab_size = 32000;
  uint64_t seed = 42;
};

// Flattens chat sessions into a trace sorted by arrival, with sequential ids
// and per-request token identity. Follow-up rounds repeat the prior round's
// prompt + reply token-for-token.
Trace GenerateMultiTurnChatTrace(const MultiTurnChatOptions& options);

struct AgentLoopOptions {
  int64_t num_agents = 32;
  // Agent-task starts per second (Poisson).
  double start_qps = 0.5;
  // Tool-call steps per task, uniform in [min_steps, max_steps].
  int64_t min_steps = 3;
  int64_t max_steps = 10;
  // Tokens of the toolkit/instructions preamble shared by every agent.
  int64_t toolkit_prompt_tokens = 1024;
  // Task statement appended once per agent after the preamble.
  LengthDistribution task{200.0, 700.0};
  // Tool observation appended to the scratchpad before each step's prompt.
  LengthDistribution observation{150.0, 900.0};
  // Action (model output) tokens per step.
  LengthDistribution action{48.0, 128.0};
  // Gap between a step's reply and the next step's arrival (tool latency),
  // exponential with this mean — much tighter than human think time.
  double mean_step_gap_s = 2.0;
  // Steps stop once prompt + action would exceed this.
  int64_t max_context = 16384;
  int32_t vocab_size = 32000;
  uint64_t seed = 42;
};

// Flattens agent tasks into a trace sorted by arrival, with sequential ids
// and per-request token identity. Every step's prompt is the whole
// scratchpad so far, so within a task each step extends the previous one.
Trace GenerateAgentLoopTrace(const AgentLoopOptions& options);

}  // namespace sarathi

#endif  // SRC_WORKLOAD_SESSION_TRACE_H_
