// Multi-turn conversation workloads.
//
// The paper notes that openchat_sharegpt4's "multi-round nature leads to
// high relative variance in the prompt lengths" because each interaction
// round is sent as a separate request whose prompt carries the accumulated
// history (§5 "Workloads"). This generator models that process explicitly:
// conversations start as a Poisson process; each round's prompt is the
// running history plus a fresh user turn; the assistant reply length is
// sampled per round; a think-time gap separates rounds. Conversations end by
// a per-round continuation probability or when the context cap is reached.

#ifndef SRC_WORKLOAD_CONVERSATION_H_
#define SRC_WORKLOAD_CONVERSATION_H_

#include <cstdint>

#include "src/workload/dataset.h"
#include "src/workload/trace.h"

namespace sarathi {

struct ConversationOptions {
  int64_t num_conversations = 64;
  // Conversation starts per second (Poisson).
  double start_qps = 0.25;
  // Probability a conversation continues after each round (geometric length;
  // mean rounds = 1 / (1 - p)).
  double continue_probability = 0.7;
  // Fresh user-turn token counts per round.
  LengthDistribution user_turn{120.0, 600.0};
  // Assistant reply token counts per round (sharegpt4 output stats).
  LengthDistribution reply{415.0, 834.0};
  // Gap between receiving a reply and sending the next turn, exponential
  // with this mean.
  double mean_think_time_s = 30.0;
  // Rounds stop once prompt + reply would exceed this.
  int64_t max_context = 8192;
  uint64_t seed = 42;
};

// Flattens conversations into a request trace, sorted by arrival time, with
// sequential ids. Arrival of round r+1 is round r's arrival plus a service
// allowance plus think time (the generator has no feedback from the served
// system, matching how the paper replays dataset rounds).
Trace GenerateConversationTrace(const ConversationOptions& options);

}  // namespace sarathi

#endif  // SRC_WORKLOAD_CONVERSATION_H_
