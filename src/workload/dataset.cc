#include "src/workload/dataset.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace sarathi {
namespace {

// 90th-percentile z-score of the standard normal.
constexpr double kZ90 = 1.2815515655446004;

}  // namespace

double LengthDistribution::mu() const {
  CHECK_GT(median, 0.0);
  return std::log(median);
}

double LengthDistribution::sigma() const {
  CHECK_GT(p90, median);
  return std::log(p90 / median) / kZ90;
}

int64_t LengthDistribution::Sample(Rng& rng, int64_t min_tokens) const {
  double draw = rng.LogNormal(mu(), sigma());
  auto tokens = static_cast<int64_t>(std::llround(draw));
  return std::max(tokens, min_tokens);
}

RequestShape SampleShape(const DatasetSpec& dataset, Rng& rng) {
  // Rejection-sample the paper's outlier filter; the cap cuts only the far
  // tail so this terminates almost immediately in practice.
  for (int attempt = 0; attempt < 1000; ++attempt) {
    RequestShape shape;
    shape.prompt_tokens = dataset.prompt.Sample(rng);
    shape.output_tokens = dataset.output.Sample(rng);
    if (shape.prompt_tokens + shape.output_tokens <= dataset.max_total_len) {
      return shape;
    }
  }
  // Pathological distribution configuration; clamp rather than loop forever.
  RequestShape shape;
  shape.prompt_tokens = dataset.max_total_len / 2;
  shape.output_tokens = dataset.max_total_len / 4;
  return shape;
}

DatasetSpec OpenChatShareGpt4() {
  DatasetSpec spec;
  spec.name = "openchat_sharegpt4";
  spec.prompt = {1730.0, 5696.0};
  spec.output = {415.0, 834.0};
  spec.max_total_len = 8192;
  return spec;
}

DatasetSpec ArxivSummarization() {
  DatasetSpec spec;
  spec.name = "arxiv_summarization";
  spec.prompt = {7059.0, 12985.0};
  spec.output = {208.0, 371.0};
  spec.max_total_len = 16384;
  return spec;
}

}  // namespace sarathi
