#include "src/workload/trace_io.h"

#include <fstream>
#include <sstream>
#include <vector>

namespace sarathi {
namespace {

constexpr char kHeader[] = "id,arrival_time_s,prompt_tokens,output_tokens,client_id,qos";
// Pre-QoS format, still accepted on read (qos defaults to interactive).
constexpr char kClientHeader[] = "id,arrival_time_s,prompt_tokens,output_tokens,client_id";
// Pre-multi-tenant format, still accepted on read (client_id defaults to 0).
constexpr char kLegacyHeader[] = "id,arrival_time_s,prompt_tokens,output_tokens";

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream in(line);
  while (std::getline(in, field, ',')) {
    fields.push_back(field);
  }
  return fields;
}

}  // namespace

void WriteTraceCsv(const Trace& trace, std::ostream& out) {
  if (!trace.name.empty()) {
    out << "# name: " << trace.name << '\n';
  }
  out << kHeader << '\n';
  for (const Request& r : trace.requests) {
    out << r.id << ',' << r.arrival_time_s << ',' << r.prompt_tokens << ','
        << r.output_tokens << ',' << r.client_id << ','
        << static_cast<int>(r.qos) << '\n';
  }
}

StatusOr<Trace> ReadTraceCsv(std::istream& in) {
  Trace trace;
  std::string line;
  bool header_seen = false;
  int line_number = 0;
  double last_arrival = 0.0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) {
      continue;
    }
    if (line.rfind("# name: ", 0) == 0) {
      trace.name = line.substr(8);
      continue;
    }
    if (line[0] == '#') {
      continue;
    }
    if (!header_seen) {
      if (line != kHeader && line != kClientHeader && line != kLegacyHeader) {
        return InvalidArgumentError("line " + std::to_string(line_number) +
                                    ": expected header '" + kHeader + "', got '" + line + "'");
      }
      header_seen = true;
      continue;
    }
    std::vector<std::string> fields = SplitCsvLine(line);
    if (fields.size() < 4 || fields.size() > 6) {
      return InvalidArgumentError("line " + std::to_string(line_number) +
                                  ": expected 4 to 6 fields");
    }
    Request request;
    try {
      request.id = std::stoll(fields[0]);
      request.arrival_time_s = std::stod(fields[1]);
      request.prompt_tokens = std::stoll(fields[2]);
      request.output_tokens = std::stoll(fields[3]);
      request.client_id = fields.size() >= 5 ? std::stoll(fields[4]) : 0;
      if (fields.size() == 6) {
        int qos = std::stoi(fields[5]);
        if (qos != 0 && qos != 1) {
          return InvalidArgumentError("line " + std::to_string(line_number) +
                                      ": qos must be 0 (interactive) or 1 (batch)");
        }
        request.qos = static_cast<QosClass>(qos);
      }
    } catch (const std::exception&) {
      return InvalidArgumentError("line " + std::to_string(line_number) + ": parse error");
    }
    if (request.prompt_tokens <= 0 || request.output_tokens <= 0) {
      return InvalidArgumentError("line " + std::to_string(line_number) +
                                  ": token counts must be positive");
    }
    if (request.arrival_time_s < last_arrival) {
      return InvalidArgumentError("line " + std::to_string(line_number) +
                                  ": arrival times must be non-decreasing");
    }
    last_arrival = request.arrival_time_s;
    trace.requests.push_back(request);
  }
  if (!header_seen) {
    return InvalidArgumentError("empty trace file");
  }
  return trace;
}

Status SaveTrace(const Trace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return InternalError("cannot open " + path + " for writing");
  }
  WriteTraceCsv(trace, out);
  if (!out) {
    return InternalError("write failed for " + path);
  }
  return Status::Ok();
}

StatusOr<Trace> LoadTrace(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return NotFoundError("cannot open " + path);
  }
  return ReadTraceCsv(in);
}

}  // namespace sarathi
