#include "src/workload/session_trace.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "src/common/logging.h"

namespace sarathi {
namespace {

void AppendRandomTokens(std::vector<int32_t>* tokens, int64_t count, int32_t vocab_size,
                        Rng& rng) {
  for (int64_t i = 0; i < count; ++i) {
    tokens->push_back(static_cast<int32_t>(rng.UniformInt(0, vocab_size - 1)));
  }
}

void SortAndNumber(Trace* trace) {
  std::stable_sort(trace->requests.begin(), trace->requests.end(),
                   [](const Request& a, const Request& b) {
                     return a.arrival_time_s < b.arrival_time_s;
                   });
  for (size_t i = 0; i < trace->requests.size(); ++i) {
    trace->requests[i].id = static_cast<int64_t>(i);
  }
}

}  // namespace

Trace GenerateMultiTurnChatTrace(const MultiTurnChatOptions& options) {
  CHECK_GT(options.num_sessions, 0);
  CHECK_GE(options.continue_probability, 0.0);
  CHECK_LT(options.continue_probability, 1.0);
  CHECK_GE(options.system_prompt_tokens, 0);
  CHECK_GT(options.vocab_size, 0);
  Rng rng(options.seed);

  // One shared system-prompt stream: every session opens with these ids, so
  // the cache's root chain is hit by each new session after the first.
  std::vector<int32_t> system_prompt;
  AppendRandomTokens(&system_prompt, options.system_prompt_tokens, options.vocab_size, rng);

  Trace trace;
  trace.name = "multi_turn_chat";
  double session_start = 0.0;
  for (int64_t c = 0; c < options.num_sessions; ++c) {
    if (c > 0 && options.start_qps > 0.0) {
      session_start += rng.Exponential(options.start_qps);
    }
    double now = session_start;
    // The running token stream; each round's request snapshots it after
    // appending the fresh turn and the scripted reply.
    std::vector<int32_t> session = system_prompt;
    while (true) {
      int64_t turn = options.user_turn.Sample(rng);
      int64_t reply = options.reply.Sample(rng);
      int64_t prompt = static_cast<int64_t>(session.size()) + turn;
      if (prompt + reply > options.max_context) {
        break;
      }
      AppendRandomTokens(&session, turn, options.vocab_size, rng);
      AppendRandomTokens(&session, reply, options.vocab_size, rng);

      Request request;
      request.arrival_time_s = now;
      request.prompt_tokens = prompt;
      request.output_tokens = reply;
      request.token_ids = std::make_shared<const std::vector<int32_t>>(session);
      trace.requests.push_back(std::move(request));

      if (rng.Uniform(0.0, 1.0) >= options.continue_probability) {
        break;
      }
      // Next round arrives after the user reads the reply and types: think
      // time plus a crude per-token reading/serving allowance (matching
      // GenerateConversationTrace).
      double allowance = 0.02 * static_cast<double>(reply);
      now += allowance + rng.Exponential(1.0 / options.mean_think_time_s);
    }
  }

  SortAndNumber(&trace);
  return trace;
}

Trace GenerateAgentLoopTrace(const AgentLoopOptions& options) {
  CHECK_GT(options.num_agents, 0);
  CHECK_GE(options.min_steps, 1);
  CHECK_GE(options.max_steps, options.min_steps);
  CHECK_GE(options.toolkit_prompt_tokens, 0);
  CHECK_GT(options.vocab_size, 0);
  Rng rng(options.seed);

  std::vector<int32_t> toolkit;
  AppendRandomTokens(&toolkit, options.toolkit_prompt_tokens, options.vocab_size, rng);

  Trace trace;
  trace.name = "agent_loop";
  double task_start = 0.0;
  for (int64_t a = 0; a < options.num_agents; ++a) {
    if (a > 0 && options.start_qps > 0.0) {
      task_start += rng.Exponential(options.start_qps);
    }
    double now = task_start;
    int64_t steps = rng.UniformInt(options.min_steps, options.max_steps);
    // Scratchpad: preamble + task, then per step an observation and the
    // model's action; every step prompts with the whole scratchpad.
    std::vector<int32_t> scratchpad = toolkit;
    AppendRandomTokens(&scratchpad, options.task.Sample(rng), options.vocab_size, rng);
    for (int64_t s = 0; s < steps; ++s) {
      int64_t observation = s == 0 ? 0 : options.observation.Sample(rng);
      int64_t action = options.action.Sample(rng);
      int64_t prompt = static_cast<int64_t>(scratchpad.size()) + observation;
      if (prompt + action > options.max_context) {
        break;
      }
      AppendRandomTokens(&scratchpad, observation, options.vocab_size, rng);
      AppendRandomTokens(&scratchpad, action, options.vocab_size, rng);

      Request request;
      request.arrival_time_s = now;
      request.prompt_tokens = prompt;
      request.output_tokens = action;
      request.token_ids = std::make_shared<const std::vector<int32_t>>(scratchpad);
      trace.requests.push_back(std::move(request));

      // The next step arrives after the action streams back and the tool
      // runs; agent loops are near back-to-back compared to human turns.
      double allowance = 0.02 * static_cast<double>(action);
      now += allowance + rng.Exponential(1.0 / options.mean_step_gap_s);
    }
  }

  SortAndNumber(&trace);
  return trace;
}

}  // namespace sarathi
