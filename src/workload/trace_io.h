// Trace serialization: save and load request traces as CSV.
//
// The paper's artifact ships its experiment traces as files under /data;
// this is the equivalent facility, so synthetic traces can be frozen for
// exact cross-run reproducibility and users can bring their own production
// traces.
//
// Format (header required; the two older, shorter headers are still
// accepted on read — client_id defaults to 0 and qos to interactive):
//   id,arrival_time_s,prompt_tokens,output_tokens,client_id,qos

#ifndef SRC_WORKLOAD_TRACE_IO_H_
#define SRC_WORKLOAD_TRACE_IO_H_

#include <iosfwd>
#include <string>

#include "src/common/status.h"
#include "src/workload/trace.h"

namespace sarathi {

// Serializes the trace; name travels as a "# name: <name>" comment line.
void WriteTraceCsv(const Trace& trace, std::ostream& out);

// Parses a trace. Fails with InvalidArgument on malformed rows, negative or
// zero token counts, or unsorted arrival times.
StatusOr<Trace> ReadTraceCsv(std::istream& in);

// File-based convenience wrappers.
Status SaveTrace(const Trace& trace, const std::string& path);
StatusOr<Trace> LoadTrace(const std::string& path);

}  // namespace sarathi

#endif  // SRC_WORKLOAD_TRACE_IO_H_
