#include "src/workload/trace.h"

#include <sstream>

#include "src/common/logging.h"
#include "src/common/stats.h"

namespace sarathi {

std::string Trace::Summary() const {
  sarathi::Summary prompts;
  sarathi::Summary outputs;
  for (const auto& r : requests) {
    prompts.Add(static_cast<double>(r.prompt_tokens));
    outputs.Add(static_cast<double>(r.output_tokens));
  }
  std::ostringstream out;
  out << name << ": " << requests.size() << " requests";
  if (!requests.empty()) {
    out << ", prompt median " << prompts.Median() << " P90 " << prompts.Quantile(0.9)
        << ", output median " << outputs.Median() << " P90 " << outputs.Quantile(0.9)
        << ", span " << requests.back().arrival_time_s << "s";
  }
  return out.str();
}

Trace GenerateTrace(const DatasetSpec& dataset, const TraceOptions& options) {
  CHECK_GT(options.num_requests, 0);
  Rng rng(options.seed);
  Trace trace;
  trace.name = dataset.name;
  trace.requests.reserve(static_cast<size_t>(options.num_requests));
  double now = 0.0;
  for (int64_t i = 0; i < options.num_requests; ++i) {
    RequestShape shape = SampleShape(dataset, rng);
    Request request;
    request.id = i;
    request.arrival_time_s = now;
    request.prompt_tokens = shape.prompt_tokens;
    request.output_tokens = shape.output_tokens;
    trace.requests.push_back(request);
    if (options.qps > 0.0) {
      now += rng.Exponential(options.qps);
    }
  }
  return trace;
}

Trace UniformTrace(int64_t num_requests, int64_t prompt_tokens, int64_t output_tokens,
                   double inter_arrival_s) {
  CHECK_GT(num_requests, 0);
  Trace trace;
  trace.name = "uniform";
  trace.requests.reserve(static_cast<size_t>(num_requests));
  for (int64_t i = 0; i < num_requests; ++i) {
    Request request;
    request.id = i;
    request.arrival_time_s = inter_arrival_s * static_cast<double>(i);
    request.prompt_tokens = prompt_tokens;
    request.output_tokens = output_tokens;
    trace.requests.push_back(request);
  }
  return trace;
}

}  // namespace sarathi
