// Time-varying arrival processes: diurnal (sinusoidal day/night) and flash
// crowd (rectangular spike) traffic shapes for autoscaler and capacity
// studies. Both are non-homogeneous Poisson processes sampled by
// Lewis-Shedler thinning, so arrivals are exact (not binned) and generated in
// nondecreasing time order — the cluster driver's sorted-insert stays O(1)
// per request.

#ifndef SRC_WORKLOAD_DIURNAL_H_
#define SRC_WORKLOAD_DIURNAL_H_

#include <cstdint>

#include "src/workload/dataset.h"
#include "src/workload/trace.h"

namespace sarathi {

// Sinusoidal rate profile around a mean:
//
//   rate(t) = mean_qps * (1 + a * cos(2 * pi * (t - peak_at_s) / period_s))
//
// where a = (ptt - 1) / (ptt + 1) maps a peak-to-trough ratio `ptt` onto the
// modulation amplitude (ptt = 1 degenerates to homogeneous Poisson, ptt -> inf
// approaches full on/off). The trace spans [0, duration_s); request count is
// whatever the process yields, roughly mean_qps * duration_s.
struct DiurnalOptions {
  double mean_qps = 10.0;
  double duration_s = 86400.0;
  // Peak rate divided by trough rate; must be >= 1.
  double peak_to_trough = 4.0;
  // One full day by default; shorter periods compress several "days" into the
  // duration for quicker tests.
  double period_s = 86400.0;
  // Time of the first rate peak.
  double peak_at_s = 43200.0;
  uint64_t seed = 42;
};

// Rectangular spike on a flat baseline:
//
//   rate(t) = base_qps * flash_mult   for t in [flash_at_s, flash_at_s + flash_duration_s)
//   rate(t) = base_qps               otherwise
//
// models a flash crowd (breaking news, a retry storm from a downstream
// outage) hitting a steady service — the autoscaler's worst case, since the
// ramp is instantaneous while provisioning is not.
struct FlashCrowdOptions {
  double base_qps = 10.0;
  double duration_s = 3600.0;
  double flash_at_s = 1200.0;
  double flash_duration_s = 300.0;
  // Spike rate as a multiple of base_qps; must be >= 1.
  double flash_mult = 8.0;
  uint64_t seed = 42;
};

// Samples request shapes from `dataset` and lays arrivals out per `options`.
Trace GenerateDiurnalTrace(const DatasetSpec& dataset, const DiurnalOptions& options);
Trace GenerateFlashCrowdTrace(const DatasetSpec& dataset, const FlashCrowdOptions& options);

// Fixed-shape variants (every request is prompt_tokens/output_tokens) —
// deterministic-length fixtures for tests and cost-bounded megafleet benches.
Trace UniformDiurnalTrace(const DiurnalOptions& options, int64_t prompt_tokens,
                          int64_t output_tokens);
Trace UniformFlashCrowdTrace(const FlashCrowdOptions& options, int64_t prompt_tokens,
                             int64_t output_tokens);

}  // namespace sarathi

#endif  // SRC_WORKLOAD_DIURNAL_H_
