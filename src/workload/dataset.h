// Request-length distributions fitted to the paper's datasets (Table 2).
//
// The production traces (openchat_sharegpt4, arxiv_summarization) are not
// redistributable, so we fit log-normal distributions to the statistics the
// paper publishes — median and P90 of prompt and output token counts — and
// sample synthetic lengths from them. Log-normal matches the paper's
// description of heavy-tailed, high-variance prompt lengths; the fit makes
// the synthetic median and P90 agree with Table 2 by construction
// (mu = ln median, sigma = ln(P90/median) / z90). The paper's outlier
// filtering (total length caps of 8192 / 16384) is applied by resampling.

#ifndef SRC_WORKLOAD_DATASET_H_
#define SRC_WORKLOAD_DATASET_H_

#include <cstdint>
#include <string>

#include "src/common/rng.h"

namespace sarathi {

// Log-normal over token counts, parameterized by observable statistics.
struct LengthDistribution {
  double median = 0.0;
  double p90 = 0.0;

  double mu() const;
  double sigma() const;

  // Draws a length, clamped to at least `min_tokens`.
  int64_t Sample(Rng& rng, int64_t min_tokens = 4) const;
};

struct DatasetSpec {
  std::string name;
  LengthDistribution prompt;
  LengthDistribution output;
  // Requests whose prompt+output exceed this are filtered (paper §5,
  // "Workloads"); sampling retries until under the cap.
  int64_t max_total_len = 16384;
};

// A single request's sampled shape.
struct RequestShape {
  int64_t prompt_tokens = 0;
  int64_t output_tokens = 0;
};

// Draws a (prompt, output) pair honoring the dataset's total-length cap.
RequestShape SampleShape(const DatasetSpec& dataset, Rng& rng);

// ChatGPT-4 conversation rounds: median/P90 prompt 1730/5696, output 415/834,
// total cap 8192 (Table 2).
DatasetSpec OpenChatShareGpt4();

// Long-document summarization: median/P90 prompt 7059/12985, output 208/371,
// total cap 16384 (Table 2).
DatasetSpec ArxivSummarization();

}  // namespace sarathi

#endif  // SRC_WORKLOAD_DATASET_H_
