// Request traces: arrival process + sampled request shapes.

#ifndef SRC_WORKLOAD_TRACE_H_
#define SRC_WORKLOAD_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/workload/dataset.h"

namespace sarathi {

struct Request {
  int64_t id = 0;
  double arrival_time_s = 0.0;
  int64_t prompt_tokens = 0;
  int64_t output_tokens = 0;
  // Tenant identity for fairness-aware scheduling (kVtc); 0 by default.
  int64_t client_id = 0;
  // Parallel sampling factor: the prompt prefills once and (num_samples - 1)
  // siblings fork at prefill completion, sharing prompt KV (paged-memory
  // policies only).
  int64_t num_samples = 1;
  // Client deadline in seconds after arrival; 0 = the client waits forever.
  // Requests not complete by the deadline are aborted (counted as timeouts)
  // and completions after arrival + deadline_s don't count toward goodput.
  double deadline_s = 0.0;

  int64_t total_tokens() const { return prompt_tokens + output_tokens; }
};

struct Trace {
  std::string name;
  std::vector<Request> requests;

  size_t size() const { return requests.size(); }
  bool empty() const { return requests.empty(); }

  // Multi-line summary (count, prompt/output medians, duration) for logs.
  std::string Summary() const;
};

struct TraceOptions {
  int64_t num_requests = 256;
  // Poisson arrival rate in queries/second; <= 0 means all requests arrive at
  // t=0 (the paper's 128-request "burst" runs in Fig. 1a and Table 4).
  double qps = 1.0;
  uint64_t seed = 42;
};

// Samples shapes from the dataset and lays arrivals out as a Poisson process.
Trace GenerateTrace(const DatasetSpec& dataset, const TraceOptions& options);

// A hand-built trace with uniform shapes at a fixed rate — deterministic
// fixture for tests and the Fig. 7 / Fig. 8 micro-scenarios.
Trace UniformTrace(int64_t num_requests, int64_t prompt_tokens, int64_t output_tokens,
                   double inter_arrival_s);

}  // namespace sarathi

#endif  // SRC_WORKLOAD_TRACE_H_
