// Request traces: arrival process + sampled request shapes.

#ifndef SRC_WORKLOAD_TRACE_H_
#define SRC_WORKLOAD_TRACE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/workload/dataset.h"

namespace sarathi {

// A cluster-driver-planned extraction of a request from its replica at an
// absolute simulation time (gray-failure handling): kMigrateOut checkpoints a
// decoding request for live KV migration, kDrain aborts it so a recompute
// failover can re-route it, and kHedgeCancel cancels the loser of a hedged
// dispatch race. kNone for normal requests.
enum class PlannedAbort { kNone = 0, kMigrateOut, kDrain, kHedgeCancel };

// QoS lane for overload control: interactive traffic keeps its latency SLO
// for as long as possible while batch traffic is browned out first (output
// caps, then shedding) when the replica saturates. Everything is interactive
// unless a trace says otherwise, which keeps pre-QoS behavior unchanged.
enum class QosClass { kInteractive = 0, kBatch = 1 };

struct Request {
  int64_t id = 0;
  double arrival_time_s = 0.0;
  int64_t prompt_tokens = 0;
  int64_t output_tokens = 0;
  // Tenant identity for fairness-aware scheduling (kVtc); 0 by default.
  int64_t client_id = 0;
  // Overload-control lane (brownout ordering); interactive by default.
  QosClass qos = QosClass::kInteractive;
  // Parallel sampling factor: the prompt prefills once and (num_samples - 1)
  // siblings fork at prefill completion, sharing prompt KV (paged-memory
  // policies only).
  int64_t num_samples = 1;
  // Client deadline in seconds after arrival; 0 = the client waits forever.
  // Requests not complete by the deadline are aborted (counted as timeouts)
  // and completions after arrival + deadline_s don't count toward goodput.
  double deadline_s = 0.0;
  // Planned extraction (gray-failure handling); fires at the absolute
  // simulation time planned_abort_s. kMigrateOut/kDrain only fire on requests
  // that are decoding by then; kHedgeCancel fires in any phase.
  PlannedAbort planned_abort = PlannedAbort::kNone;
  double planned_abort_s = 0.0;
  // Live-in migration: the request arrives with this many output tokens
  // already generated on another replica and its prompt+generated KV in
  // tow; it resumes decoding without recomputing. 0 for normal requests.
  int64_t restored_generated = 0;
  // Which cluster attempt this is (0 = original dispatch; crash retries,
  // drain/migration failovers and hedges each get the next round). Request
  // ids repeat across rounds, so observability keys that must be unique per
  // attempt — tracer async-span ids — combine (retry_round, id).
  int64_t retry_round = 0;
  // Token identity for shared-prefix KV reuse: the request's prompt token ids
  // followed by its (pre-scripted) output token ids, so multi-turn follow-ups
  // can carry the prior turn verbatim. Null means unique content — the
  // prefix cache skips the request entirely. Shared (not copied) across the
  // trace copies cluster retries make; the generators that set it guarantee
  // size() >= prompt_tokens.
  std::shared_ptr<const std::vector<int32_t>> token_ids;

  int64_t total_tokens() const { return prompt_tokens + output_tokens; }
};

// Async-span key for one attempt: id + retry_round * stride. Keeps round-0
// spans keyed by the raw request id (byte-identical traces for runs without
// retries) while later rounds land in disjoint id ranges; analysis tools
// invert it with id % / id / kSpanIdRoundStride.
constexpr int64_t kSpanIdRoundStride = 1000000000000;

inline int64_t SpanIdForAttempt(int64_t request_id, int64_t retry_round) {
  return request_id + retry_round * kSpanIdRoundStride;
}

struct Trace {
  std::string name;
  std::vector<Request> requests;

  size_t size() const { return requests.size(); }
  bool empty() const { return requests.empty(); }

  // Multi-line summary (count, prompt/output medians, duration) for logs.
  std::string Summary() const;
};

struct TraceOptions {
  int64_t num_requests = 256;
  // Poisson arrival rate in queries/second; <= 0 means all requests arrive at
  // t=0 (the paper's 128-request "burst" runs in Fig. 1a and Table 4).
  double qps = 1.0;
  uint64_t seed = 42;
};

// Samples shapes from the dataset and lays arrivals out as a Poisson process.
Trace GenerateTrace(const DatasetSpec& dataset, const TraceOptions& options);

// A hand-built trace with uniform shapes at a fixed rate — deterministic
// fixture for tests and the Fig. 7 / Fig. 8 micro-scenarios.
Trace UniformTrace(int64_t num_requests, int64_t prompt_tokens, int64_t output_tokens,
                   double inter_arrival_s);

}  // namespace sarathi

#endif  // SRC_WORKLOAD_TRACE_H_
