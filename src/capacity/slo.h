// SLO definitions (paper §5.1, Table 3).
//
// Following Patel et al. (Splitwise), the paper pins the P99-TBT SLO to
// multiples of an intrinsic reference latency — one decode-only iteration at
// batch 32 with 4k contexts — so targets stay meaningful across model and
// hardware pairs: 5x for the strict (interactive chatbot) setting, 25x for
// the relaxed setting. We derive the same way from the cost model, so our
// simulated SLOs scale exactly like the paper's absolute Table 3 values.

#ifndef SRC_CAPACITY_SLO_H_
#define SRC_CAPACITY_SLO_H_

#include "src/perfmodel/iteration_cost.h"

namespace sarathi {

struct SloSpec {
  // Reference decode iteration latency the multipliers apply to.
  double reference_decode_s = 0.0;
  double strict_p99_tbt_s = 0.0;   // 5x reference.
  double relaxed_p99_tbt_s = 0.0;  // 25x reference.
  // Sustainability bound on median scheduling delay (paper uses 2 s).
  double max_median_scheduling_delay_s = 2.0;
};

inline SloSpec DeriveSlo(const IterationCostModel& cost_model) {
  SloSpec slo;
  slo.reference_decode_s = cost_model.ReferenceDecodeIterationTime();
  slo.strict_p99_tbt_s = 5.0 * slo.reference_decode_s;
  slo.relaxed_p99_tbt_s = 25.0 * slo.reference_decode_s;
  return slo;
}

}  // namespace sarathi

#endif  // SRC_CAPACITY_SLO_H_
