#include "src/capacity/capacity_search.h"

#include <algorithm>
#include <memory>

#include "src/common/logging.h"
#include "src/workload/trace.h"

namespace sarathi {

bool MeetsSlo(const SimResult& result, const CapacityOptions& options) {
  if (result.P99Tbt() > options.tbt_slo_s) {
    return false;
  }
  return result.MedianSchedulingDelay() <= options.max_median_scheduling_delay_s;
}

CapacityResult FindCapacity(const SimulatorOptions& sim_options,
                            const CapacityOptions& options) {
  auto simulator = std::make_shared<ReplicaSimulator>(sim_options);
  return FindCapacity([simulator](const Trace& trace) { return simulator->Run(trace); },
                      options);
}

CapacityResult FindCapacity(const TraceRunner& runner, const CapacityOptions& options) {
  CHECK_GT(options.tbt_slo_s, 0.0);
  CapacityResult best;

  auto probe = [&](double qps) -> bool {
    TraceOptions trace_options;
    trace_options.num_requests = options.num_requests;
    trace_options.qps = qps;
    trace_options.seed = options.seed;
    Trace trace = GenerateTrace(options.dataset, trace_options);
    SimResult result = runner(trace);
    ++best.probes;
    bool ok = MeetsSlo(result, options);
    if (ok && qps > best.capacity_qps) {
      best.capacity_qps = qps;
      best.p99_tbt_s = result.P99Tbt();
      best.median_ttft_s = result.MedianTtft();
      best.median_scheduling_delay_s = result.MedianSchedulingDelay();
    }
    return ok;
  };

  // Exponential bracketing from the floor.
  double lo = options.qps_floor;
  if (!probe(lo)) {
    // Even minimal load violates the SLO; capacity is effectively zero.
    best.capacity_qps = 0.0;
    return best;
  }
  double hi = lo;
  while (hi < options.qps_ceiling && probe(hi * 2.0)) {
    hi *= 2.0;
  }
  if (hi >= options.qps_ceiling) {
    return best;  // Saturated the search range.
  }
  lo = hi;
  hi = hi * 2.0;

  // Bisection between the last compliant and first violating load.
  for (int step = 0; step < options.bisection_steps; ++step) {
    double mid = 0.5 * (lo + hi);
    if (probe(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return best;
}

}  // namespace sarathi
