#include "src/capacity/capacity_search.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "src/common/logging.h"
#include "src/common/thread_pool.h"
#include "src/workload/trace.h"

namespace sarathi {
namespace {

struct ProbeOutcome {
  double qps = 0.0;
  bool ok = false;
  double p99_tbt_s = 0.0;
  double median_ttft_s = 0.0;
  double median_scheduling_delay_s = 0.0;
};

}  // namespace

bool MeetsSlo(const SimResult& result, const CapacityOptions& options) {
  if (result.P99Tbt() > options.tbt_slo_s) {
    return false;
  }
  return result.MedianSchedulingDelay() <= options.max_median_scheduling_delay_s;
}

CapacityResult FindCapacity(const SimulatorOptions& sim_options,
                            const CapacityOptions& options) {
  if (options.jobs > 1) {
    // Each probe builds its own simulator (and cost model): the memo caches
    // are not thread-safe, so concurrent probes must not share one.
    SimulatorOptions per_probe = sim_options;
    per_probe.cost_model = nullptr;
    return FindCapacity(
        [per_probe](const Trace& trace) { return ReplicaSimulator(per_probe).Run(trace); },
        options);
  }
  // Serial search: one simulator (and one warm cost-model cache) serves every
  // probe.
  auto simulator = std::make_shared<ReplicaSimulator>(sim_options);
  return FindCapacity([simulator](const Trace& trace) { return simulator->Run(trace); },
                      options);
}

CapacityResult FindCapacity(const TraceRunner& runner, const CapacityOptions& options) {
  CHECK_GT(options.tbt_slo_s, 0.0);
  CapacityResult best;
  const int batch = std::max(1, options.jobs);

  // Probes every load in `points` (concurrently when jobs > 1) and folds the
  // outcomes into `best` in ascending-load order, so the result is identical
  // for any worker count.
  auto probe_many = [&](const std::vector<double>& points) -> std::vector<ProbeOutcome> {
    std::vector<ProbeOutcome> outcomes =
        RunMany(options.jobs, static_cast<int64_t>(points.size()), [&](int64_t i) {
          TraceOptions trace_options;
          trace_options.num_requests = options.num_requests;
          trace_options.qps = points[static_cast<size_t>(i)];
          trace_options.seed = options.seed;
          Trace trace = GenerateTrace(options.dataset, trace_options);
          SimResult result = runner(trace);
          ProbeOutcome outcome;
          outcome.qps = points[static_cast<size_t>(i)];
          outcome.ok = MeetsSlo(result, options);
          outcome.p99_tbt_s = result.P99Tbt();
          outcome.median_ttft_s = result.MedianTtft();
          outcome.median_scheduling_delay_s = result.MedianSchedulingDelay();
          return outcome;
        });
    best.probes += static_cast<int>(points.size());
    for (const ProbeOutcome& outcome : outcomes) {
      if (outcome.ok && outcome.qps > best.capacity_qps) {
        best.capacity_qps = outcome.qps;
        best.p99_tbt_s = outcome.p99_tbt_s;
        best.median_ttft_s = outcome.median_ttft_s;
        best.median_scheduling_delay_s = outcome.median_scheduling_delay_s;
      }
    }
    return outcomes;
  };

  // Exponential bracketing from the floor, `batch` doublings per round. With
  // jobs = 1 this probes exactly the serial sequence.
  if (!probe_many({options.qps_floor})[0].ok) {
    // Even minimal load violates the SLO; capacity is effectively zero.
    best.capacity_qps = 0.0;
    return best;
  }
  double lo = options.qps_floor;
  double hi = 0.0;  // First violating load; 0 = not found yet.
  while (hi == 0.0 && lo < options.qps_ceiling) {
    std::vector<double> points;
    double q = lo;
    for (int j = 0; j < batch && q < options.qps_ceiling; ++j) {
      q *= 2.0;
      points.push_back(q);
    }
    for (const ProbeOutcome& outcome : probe_many(points)) {
      if (outcome.ok) {
        lo = outcome.qps;
      } else {
        hi = outcome.qps;
        break;
      }
    }
  }
  if (hi == 0.0) {
    return best;  // Saturated the search range.
  }

  // Refinement between the last compliant and first violating load: each
  // round probes `batch` evenly spaced interior points, shrinking the
  // interval by at least (batch + 1)x. The round count matches the precision
  // of `bisection_steps` serial halvings; with jobs = 1 it IS serial
  // bisection.
  double per_round = std::log2(static_cast<double>(batch + 1));
  int rounds = static_cast<int>(
      std::ceil(static_cast<double>(options.bisection_steps) / per_round));
  for (int round = 0; round < rounds; ++round) {
    std::vector<double> points;
    points.reserve(static_cast<size_t>(batch));
    for (int j = 1; j <= batch; ++j) {
      points.push_back(lo + (hi - lo) * static_cast<double>(j) /
                                static_cast<double>(batch + 1));
    }
    for (const ProbeOutcome& outcome : probe_many(points)) {
      if (outcome.ok) {
        lo = outcome.qps;
      } else {
        hi = outcome.qps;
        break;
      }
    }
  }
  return best;
}

}  // namespace sarathi
