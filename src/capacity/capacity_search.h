// Capacity: the maximum sustainable load under latency SLOs (paper §2.4).
//
// Capacity(SLO) = max QPS such that a Poisson trace served at that rate keeps
// P99 TBT within the SLO and the median scheduling delay under 2 s (the
// paper's sustainability condition). Found by exponential bracketing followed
// by bisection; the SLO-compliance predicate is monotone in load for every
// policy studied here.

#ifndef SRC_CAPACITY_CAPACITY_SEARCH_H_
#define SRC_CAPACITY_CAPACITY_SEARCH_H_

#include <cstdint>
#include <functional>

#include "src/simulator/replica_simulator.h"
#include "src/workload/dataset.h"

namespace sarathi {

struct CapacityOptions {
  DatasetSpec dataset;
  // Trace size per probe; larger is slower but tightens the P99 estimate.
  int64_t num_requests = 256;
  uint64_t seed = 42;

  double tbt_slo_s = 0.1;
  double max_median_scheduling_delay_s = 2.0;

  // Search controls.
  double qps_floor = 0.0625;
  double qps_ceiling = 256.0;
  int bisection_steps = 7;

  // Parallel QPS probes: each search round fans `jobs` probe simulations
  // across a thread pool (exponential bracketing probes `jobs` doublings per
  // round; refinement probes `jobs` evenly spaced interior loads per round
  // until the interval is at least as tight as `bisection_steps` serial
  // bisections). The probe schedule — and therefore the result — is a
  // deterministic function of the options including `jobs`; jobs = 1
  // reproduces the serial search exactly. With jobs > 1 the TraceRunner must
  // be safe to invoke concurrently (the SimulatorOptions overload builds an
  // independent simulator per probe).
  int jobs = 1;
};

struct CapacityResult {
  double capacity_qps = 0.0;
  // Metrics observed at the last compliant probe.
  double p99_tbt_s = 0.0;
  double median_ttft_s = 0.0;
  double median_scheduling_delay_s = 0.0;
  int probes = 0;
};

// Whether one simulated run at the given trace meets the SLOs.
bool MeetsSlo(const SimResult& result, const CapacityOptions& options);

// Serves one trace and returns its metrics — any serving system (replica,
// disaggregated pair, cluster) can be capacity-searched through this.
using TraceRunner = std::function<SimResult(const Trace&)>;

// Runs the search against an arbitrary serving system.
CapacityResult FindCapacity(const TraceRunner& runner, const CapacityOptions& options);

// Convenience overload for a single simulated replica.
CapacityResult FindCapacity(const SimulatorOptions& sim_options, const CapacityOptions& options);

}  // namespace sarathi

#endif  // SRC_CAPACITY_CAPACITY_SEARCH_H_
