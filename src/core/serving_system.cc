#include "src/core/serving_system.h"

namespace sarathi {

Deployment MistralOnA100() {
  Deployment d;
  d.model = Mistral7B();
  d.cluster = AzureNC96adsCluster();
  d.parallel = Tp(1);
  return d;
}

Deployment YiOnA100Tp2() {
  Deployment d;
  d.model = Yi34B();
  d.cluster = AzureNC96adsCluster();
  d.parallel = Tp(2);
  return d;
}

Deployment LlamaOnA40Tp4Pp2() {
  Deployment d;
  d.model = Llama2_70B();
  d.cluster = A40x8Cluster();
  // Eight A40s: 4-way TP within pairs of NVLinked GPUs, 2 pipeline stages.
  d.parallel = TpPp(4, 2);
  return d;
}

Deployment FalconOnA100Tp4Pp2() {
  Deployment d;
  d.model = Falcon180B();
  d.cluster = AzureNC96adsCluster();
  d.parallel = TpPp(4, 2);  // TP4 within a node, PP2 across Ethernet.
  return d;
}

Deployment FalconOnA100Tp8() {
  Deployment d;
  d.model = Falcon180B();
  d.cluster = AzureNC96adsCluster();
  d.parallel = Tp(8);  // Spans both nodes: all-reduces cross Ethernet.
  return d;
}

SchedulerConfig SarathiConfig(int64_t token_budget, int64_t max_batch_size) {
  SchedulerConfig config;
  config.policy = SchedulerPolicy::kSarathi;
  config.token_budget = token_budget;
  config.max_batch_size = max_batch_size;
  return config;
}

SchedulerConfig DynamicSarathiConfig(double tbt_slo_s, int64_t initial_budget,
                                     int64_t max_batch_size) {
  SchedulerConfig config = SarathiConfig(initial_budget, max_batch_size);
  config.dynamic_budget_tbt_slo_s = tbt_slo_s;
  return config;
}

SchedulerConfig VllmConfig(int64_t max_batch_size) {
  SchedulerConfig config;
  config.policy = SchedulerPolicy::kVllm;
  config.max_batch_size = max_batch_size;
  return config;
}

SchedulerConfig OrcaConfig(int64_t max_batch_size) {
  SchedulerConfig config;
  config.policy = SchedulerPolicy::kOrca;
  config.max_batch_size = max_batch_size;
  return config;
}

SchedulerConfig FasterTransformerConfig(int64_t max_batch_size) {
  SchedulerConfig config;
  config.policy = SchedulerPolicy::kFasterTransformer;
  config.max_batch_size = max_batch_size;
  return config;
}

ServingSystem::ServingSystem(const Deployment& deployment, const SchedulerConfig& scheduler)
    : deployment_(deployment), scheduler_(scheduler),
      cost_model_(deployment.model, deployment.cluster, deployment.parallel) {}

SimulatorOptions ServingSystem::MakeSimOptions(bool record_iterations) const {
  SimulatorOptions options;
  options.model = deployment_.model;
  options.cluster = deployment_.cluster;
  options.parallel = deployment_.parallel;
  options.scheduler = scheduler_;
  options.record_iterations = record_iterations;
  return options;
}

SimResult ServingSystem::Serve(const Trace& trace, bool record_iterations, Tracer* tracer,
                               MetricsRegistry* metrics, FlightRecorder* flight,
                               SloMonitor* slo) const {
  SimulatorOptions options = MakeSimOptions(record_iterations);
  options.tracer = tracer;
  options.metrics = metrics;
  options.flight = flight;
  options.slo = slo;
  ReplicaSimulator simulator(options);
  return simulator.Run(trace);
}

SloSpec ServingSystem::Slo() const { return DeriveSlo(cost_model_); }

CapacityResult ServingSystem::MeasureCapacity(const DatasetSpec& dataset, double tbt_slo_s,
                                              int64_t num_requests, uint64_t seed,
                                              int jobs) const {
  CapacityOptions options;
  options.dataset = dataset;
  options.tbt_slo_s = tbt_slo_s;
  options.num_requests = num_requests;
  options.seed = seed;
  options.jobs = jobs;
  return FindCapacity(MakeSimOptions(false), options);
}

const IterationCostModel& ServingSystem::cost_model() const { return cost_model_; }

}  // namespace sarathi
