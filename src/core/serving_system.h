// Public facade of the library.
//
// A ServingSystem binds a deployment (model + cluster + parallelism, Table 1
// presets provided) to a scheduling policy and exposes the three operations
// the examples and benches need: serve a trace, derive SLOs, and measure
// capacity. Lower layers remain usable directly for finer control.

#ifndef SRC_CORE_SERVING_SYSTEM_H_
#define SRC_CORE_SERVING_SYSTEM_H_

#include <string>

#include "src/capacity/capacity_search.h"
#include "src/capacity/slo.h"
#include "src/perfmodel/gpu_spec.h"
#include "src/perfmodel/model_spec.h"
#include "src/perfmodel/parallel_config.h"
#include "src/scheduler/scheduler.h"
#include "src/simulator/replica_simulator.h"
#include "src/workload/trace.h"

namespace sarathi {

// A model replica's hardware placement.
struct Deployment {
  ModelSpec model;
  ClusterSpec cluster;
  ParallelConfig parallel;

  std::string Name() const { return model.name + " (" + parallel.ToString() + ")"; }
};

// The paper's four evaluation deployments (Table 1) plus the Fig. 13
// cross-node TP-8 counterfactual.
Deployment MistralOnA100();          // Mistral-7B, 1x A100.
Deployment YiOnA100Tp2();            // Yi-34B, 2x A100, TP2.
Deployment LlamaOnA40Tp4Pp2();       // LLaMA2-70B, 8x A40, TP4-PP2.
Deployment FalconOnA100Tp4Pp2();     // Falcon-180B, 2 nodes x 4 A100, TP4-PP2.
Deployment FalconOnA100Tp8();        // Falcon-180B, TP8 spanning two nodes.

// Convenience scheduler configurations matching the paper's setups.
SchedulerConfig SarathiConfig(int64_t token_budget, int64_t max_batch_size = 128);
// Sarathi-Serve with the run-time adaptive token budget (§5.1 future work):
// the budget starts at `initial_budget` and tracks the given TBT target.
SchedulerConfig DynamicSarathiConfig(double tbt_slo_s, int64_t initial_budget = 512,
                                     int64_t max_batch_size = 128);
SchedulerConfig VllmConfig(int64_t max_batch_size = 128);
SchedulerConfig OrcaConfig(int64_t max_batch_size = 128);
SchedulerConfig FasterTransformerConfig(int64_t max_batch_size = 32);

class ServingSystem {
 public:
  ServingSystem(const Deployment& deployment, const SchedulerConfig& scheduler);

  // Serves the trace on the simulated replica. Optional observability sinks
  // (any may be null): the tracer collects request lifecycle spans and
  // iteration slices, the registry windowed time series, the flight recorder
  // a ring of recent events (auto-dumped on triggers), and the SLO monitor
  // burn-rate alerts fed live from the run.
  SimResult Serve(const Trace& trace, bool record_iterations = false,
                  Tracer* tracer = nullptr, MetricsRegistry* metrics = nullptr,
                  FlightRecorder* flight = nullptr, SloMonitor* slo = nullptr) const;

  // SLO thresholds for this deployment (Table 3 derivation).
  SloSpec Slo() const;

  // Max sustainable load under a P99-TBT target. `jobs` > 1 fans the QPS
  // probes across a thread pool (see CapacityOptions::jobs); the result is
  // deterministic for a given `jobs` value, and jobs = 1 is the serial search.
  CapacityResult MeasureCapacity(const DatasetSpec& dataset, double tbt_slo_s,
                                 int64_t num_requests = 256, uint64_t seed = 42,
                                 int jobs = 1) const;

  const Deployment& deployment() const { return deployment_; }
  const SchedulerConfig& scheduler_config() const { return scheduler_; }
  const IterationCostModel& cost_model() const;

 private:
  SimulatorOptions MakeSimOptions(bool record_iterations) const;

  Deployment deployment_;
  SchedulerConfig scheduler_;
  IterationCostModel cost_model_;
};

}  // namespace sarathi

#endif  // SRC_CORE_SERVING_SYSTEM_H_
